"""Content-addressed artifact cache.

Completed task artifacts are pickled under ``<root>/<key[:2]>/<key>.pkl``
where ``key`` is the task's content hash, so a cache entry is valid for
exactly one (body, params, upstream-artifacts) combination and never goes
stale on a config change — a changed config simply hashes to a different
key.  Writes are atomic (temp file + ``os.replace``) so a crashed or
concurrent run cannot leave a half-written entry behind, and unreadable
entries are treated as misses and deleted rather than propagated — the
swallowed error class is recorded in ``corruption_kinds`` so operators can
tell a torn write from a format drift.

Chaos hook: installing a :class:`~repro.resilience.faults.FaultPlan` as
``fault_plan`` makes ``store`` simulate a crash mid-write for scheduled
keys (a *torn* entry written without the atomic rename).  The next run's
load detects the corruption, recomputes, and repairs the entry — which is
exactly the recovery path ``chaos-bench`` asserts.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Any

#: Everything unpickling hostile bytes can throw.  Deliberately concrete:
#: ``KeyboardInterrupt``/``SystemExit`` and genuine bugs must propagate.
CORRUPTION_ERRORS = (
    pickle.UnpicklingError,
    EOFError,
    AttributeError,
    ImportError,
    IndexError,
    KeyError,
    TypeError,
    ValueError,
    OSError,
    MemoryError,
)


class ArtifactCache:
    """Disk cache keyed by content hash; ``root=None`` disables it."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else None
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        #: Exception class name -> count, for corrupted entries.
        self.corruption_kinds: dict[str, int] = {}
        #: Optional FaultPlan; ``store`` consults site "cache" with the
        #: task name as identity.
        self.fault_plan = None
        #: Torn writes injected by the fault plan.
        self.tears = 0

    @property
    def enabled(self) -> bool:
        return self.root is not None

    def path_for(self, key: str) -> Path:
        if self.root is None:
            raise ValueError("cache is disabled")
        return self.root / key[:2] / f"{key}.pkl"

    def contains(self, key: str) -> bool:
        """Whether an entry for ``key`` exists on disk.

        A cheap existence probe (no unpickling, no hit/miss accounting) for
        callers that only need to know whether a start would be warm — a
        present-but-corrupt entry still resolves to a recompute at load time.
        """
        return self.root is not None and self.path_for(key).exists()

    def load(self, key: str) -> tuple[bool, Any]:
        """Return ``(hit, artifact)``; corrupted entries count as misses
        and are removed so the task is recomputed and the entry rewritten."""
        if self.root is None:
            return False, None
        path = self.path_for(key)
        if not path.exists():
            self.misses += 1
            return False, None
        try:
            payload = pickle.loads(path.read_bytes())
            if payload["key"] != key:
                raise ValueError("cache entry key mismatch")
            artifact = payload["artifact"]
        except CORRUPTION_ERRORS as exc:
            self.corrupt += 1
            self.misses += 1
            name = type(exc).__name__
            self.corruption_kinds[name] = self.corruption_kinds.get(name, 0) + 1
            try:
                path.unlink()
            except OSError:
                pass
            return False, None
        self.hits += 1
        return True, artifact

    def store(self, key: str, task_name: str, artifact: Any) -> None:
        if self.root is None:
            return
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"key": key, "task": task_name, "artifact": artifact}
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        if self.fault_plan is not None:
            if self.fault_plan.draw("cache", task_name, 0) == "cache-tear":
                # Simulated crash mid-write: a torn entry lands at the final
                # path with no atomic rename — the worst case a real crash
                # between write and replace could produce.
                self.tears += 1
                path.write_bytes(blob[: max(1, len(blob) // 2)])
                return
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        tmp.write_bytes(blob)
        os.replace(tmp, path)
