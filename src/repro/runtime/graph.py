"""Deterministic task graph over benchmark artifacts.

Every artifact the experiment harness consumes (a built domain, the
MiniSpider corpus, a trained system, an evaluated Table-5 cell) is a node in
a :class:`TaskGraph`.  A task declares

* a **body** — a module-level function named by ``"module.path:function"``
  so worker processes can resolve it by import,
* **params** — the JSON-serializable slice of the experiment config it
  actually reads (nothing else may influence its output),
* **deps** — named upstream tasks whose artifacts are passed to the body,
* and, for stochastic tasks, a **derived seed** inside ``params``
  (see :func:`derive_seed`) so no two tasks share an RNG stream and no task
  depends on schedule order.

The **content hash** of a task is a SHA-256 over its body name, params and
the hashes of its dependencies.  Identical hash ⇒ identical artifact, which
is what makes the disk cache safe and parallel/sequential schedules
bit-identical.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

#: Bump to invalidate every content hash (and therefore every cache entry)
#: when the artifact format or task semantics change incompatibly.
#: 2: trained-system artifacts carry the schema-linking memo (serving).
GRAPH_FORMAT = 2


def derive_seed(base_seed: int, task_name: str) -> int:
    """A stable per-task RNG seed: independent tasks get independent streams,
    and the seed depends only on (base seed, task name) — never on schedule."""
    digest = hashlib.sha256(f"{base_seed}:{task_name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class Task:
    """One node of the graph: a named, pure, picklable unit of work."""

    name: str
    fn: str  # "module.path:function", resolved in the executing process
    params: dict = field(default_factory=dict)
    #: (role, upstream task name) pairs; the body receives ``{role: artifact}``.
    deps: tuple[tuple[str, str], ...] = ()

    def dep_names(self) -> tuple[str, ...]:
        return tuple(name for _, name in self.deps)


class TaskGraph:
    """A DAG of :class:`Task` nodes with content-addressed hashing.

    Tasks must be added dependencies-first, which makes insertion order a
    topological order and guarantees the graph is acyclic by construction.
    """

    def __init__(self) -> None:
        self._tasks: dict[str, Task] = {}
        self._hashes: dict[str, str] = {}

    def add(self, task: Task) -> None:
        if task.name in self._tasks:
            raise ValueError(f"duplicate task {task.name!r}")
        for role, dep in task.deps:
            if dep not in self._tasks:
                raise ValueError(
                    f"task {task.name!r} depends on unknown task {dep!r} "
                    f"(role {role!r}); add dependencies first"
                )
        self._tasks[task.name] = task

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    def __len__(self) -> int:
        return len(self._tasks)

    def task(self, name: str) -> Task:
        try:
            return self._tasks[name]
        except KeyError:
            raise KeyError(f"unknown task {name!r}") from None

    def names(self) -> tuple[str, ...]:
        return tuple(self._tasks)

    def content_hash(self, name: str) -> str:
        """SHA-256 of the task's body, params and upstream hashes (memoized)."""
        if name not in self._hashes:
            task = self.task(name)
            payload = {
                "format": GRAPH_FORMAT,
                "fn": task.fn,
                "params": task.params,
                "deps": {role: self.content_hash(dep) for role, dep in task.deps},
            }
            blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
            self._hashes[name] = hashlib.sha256(blob.encode()).hexdigest()
        return self._hashes[name]

    def closure(self, targets: list[str] | tuple[str, ...]) -> list[str]:
        """All tasks the targets transitively need, in topological order."""
        needed: set[str] = set()

        def visit(name: str) -> None:
            if name in needed:
                return
            needed.add(name)
            for dep in self.task(name).dep_names():
                visit(dep)

        for target in targets:
            visit(target)
        # Insertion order is topological (deps are added first).
        return [name for name in self._tasks if name in needed]
