"""The runtime: executes a :class:`~repro.runtime.graph.TaskGraph`.

``Runtime.run(graph, targets)`` materializes the requested artifacts:

1. targets are resolved depth-first, consulting the in-process memo and the
   disk cache by content hash — a cached task prunes its whole upstream
   subgraph (a warm ``tables 5`` never even loads the trained systems'
   inputs);
2. what remains is computed, either inline (``workers=1``) or fanned across
   a :class:`~concurrent.futures.ProcessPoolExecutor`, submitting every task
   whose dependencies are satisfied.

Because each task body is pure in (params, dependency artifacts), the
schedule cannot influence any artifact: parallel and sequential runs are
bit-identical.  Per-task wall time, cache hit/miss counters, retries and
injected faults are appended to ``Runtime.report`` (rendered by the CLI's
``--timings``).

Resilience:

* transient task failures (:data:`~repro.resilience.faults.TRANSIENT_ERRORS`
  plus pool breakage) are retried per task under a
  :class:`~repro.resilience.RetryPolicy` — and since bodies are pure, a
  retried task recomputes the identical artifact;
* a dead worker process (``BrokenProcessPool``) is recovered by rebuilding
  the pool and resubmitting every interrupted task;
* ``task_timeout_s`` flags tasks that ran over budget and retries them
  (detection is post-hoc: a deterministic body that finishes is never
  killed mid-flight, so artifacts stay schedule-independent);
* a :class:`~repro.resilience.faults.FaultPlan` injects worker crashes
  (``os._exit`` in pool workers — exercising the *real* recovery path) and
  torn cache writes for ``chaos-bench``.
"""

from __future__ import annotations

import importlib
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ReproError
from repro.obs import get_tracer
from repro.obs.metrics import MetricsRegistry
from repro.resilience.clock import SYSTEM_CLOCK
from repro.resilience.faults import TRANSIENT_ERRORS, FaultPlan, raise_fault
from repro.resilience.retry import RetryPolicy
from repro.runtime.cache import ArtifactCache
from repro.runtime.graph import TaskGraph


class TaskTimeoutError(ReproError):
    """A task body exceeded the runtime's per-task time budget."""

    kind = "task-timeout"


def resolve_fn(fn_path: str) -> Callable[[dict, dict], Any]:
    """Resolve a ``"module.path:function"`` task body."""
    module_name, sep, attr = fn_path.partition(":")
    if not sep or not attr:
        raise ValueError(f"task fn must look like 'module:function', got {fn_path!r}")
    return getattr(importlib.import_module(module_name), attr)


def execute_task(
    fn_path: str,
    params: dict,
    inputs: dict,
    inject: str | None = None,
    inject_mode: str = "raise",
    trace: dict | None = None,
) -> tuple[Any, float, list]:
    """Run one task body; module-level so worker processes can import it.

    Returns ``(artifact, seconds, spans)`` with the time measured where the
    work actually happened.  ``inject`` carries a scheduled fault kind
    decided by the parent: ``"worker-crash"`` in ``"exit"`` mode kills the
    hosting process outright (a pool worker dying for real), in ``"raise"``
    mode it raises — the inline-execution equivalent.

    ``trace`` carries the parent's span context across the process-pool
    boundary: ``{"name", "parent", "prefix"}``.  The worker records spans
    into a local tracer (ids prefixed so they cannot collide with the
    parent's) and ships them back for adoption; inline callers pass None
    and record through the ambient tracer directly.
    """
    if inject == "worker-crash" and inject_mode == "exit":
        os._exit(23)
    if inject is not None:
        raise_fault(inject, fn_path)
    if trace is None:
        start = SYSTEM_CLOCK.now()
        artifact = resolve_fn(fn_path)(params, inputs)
        return artifact, SYSTEM_CLOCK.now() - start, []

    from repro import obs
    from repro.obs.tracer import Tracer

    tracer = Tracer(id_prefix=trace["prefix"])
    previous = obs.set_tracer(tracer)
    try:
        with tracer.span(f"exec:{trace['name']}", parent=trace["parent"]):
            start = SYSTEM_CLOCK.now()
            artifact = resolve_fn(fn_path)(params, inputs)
            seconds = SYSTEM_CLOCK.now() - start
    finally:
        obs.set_tracer(previous)
    return artifact, seconds, tracer.finished()


@dataclass
class TaskRecord:
    """How one task was satisfied during a run."""

    name: str
    status: str  # "computed" | "hit" (disk cache) | "memo" (in-process)
    seconds: float
    key: str  # content hash
    retries: int = 0  # extra attempts spent before success
    faults: int = 0  # synthetic faults injected into this task


@dataclass
class RunReport:
    """Accumulated task records across every ``Runtime.run`` call."""

    records: list[TaskRecord] = field(default_factory=list)
    #: fault/failure kind -> times a task recovered from it via retry.
    recovered: dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records)

    def count(self, status: str) -> int:
        return sum(1 for r in self.records if r.status == status)

    @property
    def computed(self) -> int:
        return self.count("computed")

    @property
    def cache_hits(self) -> int:
        return self.count("hit")

    @property
    def memoized(self) -> int:
        return self.count("memo")

    @property
    def retries(self) -> int:
        return sum(r.retries for r in self.records)

    @property
    def faults_injected(self) -> int:
        return sum(r.faults for r in self.records)

    def task_seconds(self) -> float:
        return sum(r.seconds for r in self.records)

    def all_cached(self) -> bool:
        """True when no task had to be computed (a fully warm run)."""
        return bool(self.records) and self.computed == 0

    def render(self) -> str:
        lines = ["== runtime report =="]
        width = max((len(r.name) for r in self.records), default=4)
        for record in sorted(self.records, key=lambda r: r.name):
            lines.append(
                f"{record.name:<{width}}  {record.key[:10]}  "
                f"{record.status:<8}  {record.seconds:8.3f}s  "
                f"retries={record.retries}  faults_injected={record.faults}"
            )
        lines.append(
            f"runtime: {len(self.records)} tasks | computed={self.computed} "
            f"cache-hits={self.cache_hits} memo={self.memoized} | "
            f"task-time {self.task_seconds():.2f}s | "
            f"retries={self.retries} faults_injected={self.faults_injected}"
        )
        return "\n".join(lines)


class Runtime:
    """Execution policy for a task graph: worker count, artifact cache,
    retry policy, optional per-task timeout and fault plan.

    One runtime can serve many suites and many ``run`` calls; completed
    artifacts stay memoized in-process by content hash.
    """

    def __init__(
        self,
        workers: int = 1,
        cache_dir: str | None = None,
        retry: RetryPolicy | None = None,
        task_timeout_s: float | None = None,
        fault_plan: FaultPlan | None = None,
        clock=SYSTEM_CLOCK,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.workers = max(1, int(workers))
        self.cache = ArtifactCache(cache_dir)
        self.retry = retry or RetryPolicy(max_attempts=3, base_delay_s=0.01, budget_s=1.0)
        self.task_timeout_s = task_timeout_s
        self.fault_plan = fault_plan
        self.cache.fault_plan = fault_plan
        self.clock = clock
        self.metrics = metrics or MetricsRegistry()
        self._memo: dict[str, Any] = {}
        self.report = RunReport()

    def probe(self, graph: TaskGraph, names: list[str] | tuple[str, ...]) -> dict[str, str]:
        """How each task would be satisfied right now, without computing.

        ``"memo"`` (already in-process), ``"cached"`` (disk artifact
        present) or ``"compute"``.  The serving loader uses this to report
        whether a start is warm before paying for :meth:`run`.
        """
        status: dict[str, str] = {}
        for name in dict.fromkeys(names):
            key = graph.content_hash(name)
            if key in self._memo:
                status[name] = "memo"
            elif self.cache.contains(key):
                status[name] = "cached"
            else:
                status[name] = "compute"
        return status

    def run(self, graph: TaskGraph, targets: list[str] | tuple[str, ...]) -> dict[str, Any]:
        """Materialize ``targets``; returns ``{task name: artifact}``."""
        targets = list(dict.fromkeys(targets))
        resolved: dict[str, Any] = {}
        pending: list[str] = []  # topological: deps are planned first
        planned: set[str] = set()
        tracer = get_tracer()

        def plan(name: str) -> None:
            if name in planned:
                return
            planned.add(name)
            key = graph.content_hash(name)
            if key in self._memo:
                resolved[name] = self._memo[key]
                self.report.records.append(TaskRecord(name, "memo", 0.0, key))
                self.metrics.inc("runtime.memo")
                if tracer.enabled:
                    tracer.end_span(tracer.start_span(f"task:{name}", status="memo"))
                return
            start = self.clock.now()
            hit, artifact = self.cache.load(key)
            if hit:
                self._memo[key] = artifact
                resolved[name] = artifact
                seconds = self.clock.now() - start
                self.report.records.append(TaskRecord(name, "hit", seconds, key))
                self.metrics.inc("runtime.cache_hits")
                if tracer.enabled:
                    span = tracer.start_span(f"task:{name}", status="hit")
                    span.start_s = start  # cover the cache-load window
                    tracer.end_span(span)
                return
            tracer.event("cache-miss", task=name)
            for dep in graph.task(name).dep_names():
                plan(dep)
            pending.append(name)

        with tracer.span("runtime.run", targets=",".join(targets)):
            for target in targets:
                plan(target)

            if pending:
                if self.workers == 1 or len(pending) == 1:
                    self._run_sequential(graph, pending, resolved)
                else:
                    self._run_parallel(graph, pending, resolved)
        return {name: resolved[name] for name in targets}

    # -- execution ------------------------------------------------------------

    def _finish(
        self,
        graph: TaskGraph,
        name: str,
        artifact: Any,
        seconds: float,
        resolved: dict,
        retries: int = 0,
        faults: int = 0,
    ) -> None:
        key = graph.content_hash(name)
        self.cache.store(key, name, artifact)
        self._memo[key] = artifact
        resolved[name] = artifact
        self.report.records.append(
            TaskRecord(name, "computed", seconds, key, retries=retries, faults=faults)
        )
        self.metrics.inc("runtime.computed")
        self.metrics.observe("runtime.task_s", seconds)
        if retries:
            self.metrics.inc("runtime.retries", retries)
        if faults:
            self.metrics.inc("runtime.faults_injected", faults)

    def _inputs(self, graph: TaskGraph, name: str, resolved: dict) -> dict:
        return {role: resolved[dep] for role, dep in graph.task(name).deps}

    def _draw_fault(self, name: str, attempt: int) -> str | None:
        if self.fault_plan is None:
            return None
        return self.fault_plan.draw("task", name, attempt)

    def _check_timeout(self, name: str, seconds: float) -> None:
        if self.task_timeout_s is not None and seconds > self.task_timeout_s:
            raise TaskTimeoutError(
                f"task {name!r} took {seconds:.2f}s "
                f"(budget {self.task_timeout_s:g}s)"
            )

    def _record_recovery(self, exc: BaseException) -> None:
        if isinstance(exc, BrokenProcessPool):
            kind = "worker-crash"  # the taxonomy name for a dead pool worker
        else:
            kind = getattr(exc, "kind", type(exc).__name__)
        self.report.recovered[kind] = self.report.recovered.get(kind, 0) + 1
        self.metrics.inc(f"runtime.recovered.{kind}")

    def _run_sequential(self, graph: TaskGraph, pending: list[str], resolved: dict) -> None:
        tracer = get_tracer()
        for name in pending:
            task = graph.task(name)
            attempt = 0
            faults = 0
            with tracer.span(f"task:{name}") as span:
                while True:
                    inject = self._draw_fault(name, attempt)
                    if inject is not None:
                        faults += 1
                        tracer.event("fault-injected", task=name, kind=inject)
                    try:
                        artifact, seconds, _spans = execute_task(
                            task.fn,
                            task.params,
                            self._inputs(graph, name, resolved),
                            inject=inject,
                            inject_mode="raise",
                        )
                        self._check_timeout(name, seconds)
                    except TRANSIENT_ERRORS + (TaskTimeoutError,) as exc:
                        if attempt + 1 >= self.retry.max_attempts:
                            raise
                        tracer.event(
                            "retry",
                            task=name,
                            attempt=attempt + 1,
                            kind=getattr(exc, "kind", type(exc).__name__),
                        )
                        self.clock.sleep(self.retry.delay(attempt, name))
                        self._record_recovery(exc)
                        attempt += 1
                        continue
                    span.set_attr("status", "computed")
                    span.set_attr("retries", attempt)
                    self._finish(
                        graph, name, artifact, seconds, resolved,
                        retries=attempt, faults=faults,
                    )
                    break

    def _run_parallel(self, graph: TaskGraph, pending: list[str], resolved: dict) -> None:
        remaining = list(pending)
        attempts = dict.fromkeys(pending, 0)
        faults = dict.fromkeys(pending, 0)
        in_flight: dict[str, Any] = {}  # name -> (future, submitted_at)
        pool = ProcessPoolExecutor(max_workers=min(self.workers, len(pending)))
        tracer = get_tracer()
        # One open span per task, spanning submit → final outcome (so retries
        # land inside it); worker-side exec spans are adopted as children.
        task_spans: dict[str, Any] = {}

        def launch() -> None:
            for name in list(remaining):
                task = graph.task(name)
                if all(dep in resolved for dep in task.dep_names()):
                    inject = self._draw_fault(name, attempts[name])
                    if inject is not None:
                        faults[name] += 1
                    trace = None
                    if tracer.enabled:
                        if name not in task_spans:
                            task_spans[name] = tracer.start_span(f"task:{name}")
                        if inject is not None:
                            tracer.add_event(
                                task_spans[name], "fault-injected",
                                task=name, kind=inject,
                            )
                        # The attempt number makes the worker id prefix
                        # unique across resubmissions of the same task.
                        trace = {
                            "name": name,
                            "parent": task_spans[name].span_id,
                            "prefix": f"{name}@{attempts[name]}:",
                        }
                    in_flight[name] = (
                        pool.submit(
                            execute_task,
                            task.fn,
                            task.params,
                            self._inputs(graph, name, resolved),
                            inject,
                            "exit",
                            trace,
                        ),
                        self.clock.now(),
                    )
                    remaining.remove(name)

        def close_span(name: str, status: str) -> None:
            span = task_spans.pop(name, None)
            if span is not None:
                span.set_attr("status", status)
                span.set_attr("retries", attempts[name])
                tracer.end_span(span, status="error" if status == "failed" else "ok")

        def recycle_pool(broken_exc: BaseException) -> None:
            """A worker died (or a task ran over budget): rebuild the pool
            and resubmit every interrupted task, bounded by the retry
            policy so an always-crashing task cannot loop forever."""
            nonlocal pool
            pool.shutdown(wait=False, cancel_futures=True)
            pool = ProcessPoolExecutor(max_workers=min(self.workers, max(1, len(pending))))
            for name in list(in_flight):
                in_flight.pop(name)
                attempts[name] += 1
                if attempts[name] >= self.retry.max_attempts:
                    close_span(name, "failed")
                    raise broken_exc
                if name in task_spans:
                    tracer.add_event(
                        task_spans[name], "retry",
                        task=name, attempt=attempts[name],
                        kind=getattr(broken_exc, "kind", type(broken_exc).__name__),
                    )
                self._record_recovery(broken_exc)
                remaining.append(name)

        try:
            launch()
            wait_timeout = 0.05 if self.task_timeout_s is not None else None
            while in_flight or remaining:
                done, _ = wait(
                    {future for future, _ in in_flight.values()},
                    return_when=FIRST_COMPLETED,
                    timeout=wait_timeout,
                )
                broken: BaseException | None = None
                for name in [n for n, (f, _) in in_flight.items() if f in done]:
                    future, _ = in_flight.pop(name)
                    try:
                        artifact, seconds, worker_spans = future.result()
                        self._check_timeout(name, seconds)
                    except BrokenProcessPool as exc:
                        # The pool is unusable for everyone; handle once,
                        # outside this loop, with this task included.
                        in_flight[name] = (future, 0.0)
                        broken = exc
                        break
                    except TRANSIENT_ERRORS + (TaskTimeoutError,) as exc:
                        attempts[name] += 1
                        if attempts[name] >= self.retry.max_attempts:
                            close_span(name, "failed")
                            raise
                        if name in task_spans:
                            tracer.add_event(
                                task_spans[name], "retry",
                                task=name, attempt=attempts[name],
                                kind=getattr(exc, "kind", type(exc).__name__),
                            )
                        self.clock.sleep(self.retry.delay(attempts[name] - 1, name))
                        self._record_recovery(exc)
                        remaining.append(name)
                        continue
                    tracer.adopt(worker_spans)
                    close_span(name, "computed")
                    self._finish(
                        graph, name, artifact, seconds, resolved,
                        retries=attempts[name], faults=faults[name],
                    )
                if broken is not None:
                    recycle_pool(broken)
                elif self.task_timeout_s is not None:
                    now = self.clock.now()
                    overdue = [
                        name
                        for name, (future, submitted) in in_flight.items()
                        if not future.done() and now - submitted > self.task_timeout_s
                    ]
                    if overdue:
                        # Can't reclaim a busy worker politely: recycle the
                        # pool and retry everything that was in flight.
                        recycle_pool(
                            TaskTimeoutError(
                                f"task(s) {overdue!r} exceeded the "
                                f"{self.task_timeout_s:g}s budget"
                            )
                        )
                launch()
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
