"""The runtime: executes a :class:`~repro.runtime.graph.TaskGraph`.

``Runtime.run(graph, targets)`` materializes the requested artifacts:

1. targets are resolved depth-first, consulting the in-process memo and the
   disk cache by content hash — a cached task prunes its whole upstream
   subgraph (a warm ``tables 5`` never even loads the trained systems'
   inputs);
2. what remains is computed, either inline (``workers=1``) or fanned across
   a :class:`~concurrent.futures.ProcessPoolExecutor`, submitting every task
   whose dependencies are satisfied.

Because each task body is pure in (params, dependency artifacts), the
schedule cannot influence any artifact: parallel and sequential runs are
bit-identical.  Per-task wall time and cache hit/miss counters are appended
to ``Runtime.report`` (rendered by the CLI's ``--timings``).
"""

from __future__ import annotations

import importlib
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.runtime.cache import ArtifactCache
from repro.runtime.graph import TaskGraph


def resolve_fn(fn_path: str) -> Callable[[dict, dict], Any]:
    """Resolve a ``"module.path:function"`` task body."""
    module_name, sep, attr = fn_path.partition(":")
    if not sep or not attr:
        raise ValueError(f"task fn must look like 'module:function', got {fn_path!r}")
    return getattr(importlib.import_module(module_name), attr)


def execute_task(fn_path: str, params: dict, inputs: dict) -> tuple[Any, float]:
    """Run one task body; module-level so worker processes can import it.

    Returns ``(artifact, seconds)`` with the time measured where the work
    actually happened.
    """
    start = time.perf_counter()
    artifact = resolve_fn(fn_path)(params, inputs)
    return artifact, time.perf_counter() - start


@dataclass
class TaskRecord:
    """How one task was satisfied during a run."""

    name: str
    status: str  # "computed" | "hit" (disk cache) | "memo" (in-process)
    seconds: float
    key: str  # content hash


@dataclass
class RunReport:
    """Accumulated task records across every ``Runtime.run`` call."""

    records: list[TaskRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def count(self, status: str) -> int:
        return sum(1 for r in self.records if r.status == status)

    @property
    def computed(self) -> int:
        return self.count("computed")

    @property
    def cache_hits(self) -> int:
        return self.count("hit")

    @property
    def memoized(self) -> int:
        return self.count("memo")

    def task_seconds(self) -> float:
        return sum(r.seconds for r in self.records)

    def all_cached(self) -> bool:
        """True when no task had to be computed (a fully warm run)."""
        return bool(self.records) and self.computed == 0

    def render(self) -> str:
        lines = ["== runtime report =="]
        width = max((len(r.name) for r in self.records), default=4)
        for record in sorted(self.records, key=lambda r: r.name):
            lines.append(
                f"{record.name:<{width}}  {record.key[:10]}  "
                f"{record.status:<8}  {record.seconds:8.3f}s"
            )
        lines.append(
            f"runtime: {len(self.records)} tasks | computed={self.computed} "
            f"cache-hits={self.cache_hits} memo={self.memoized} | "
            f"task-time {self.task_seconds():.2f}s"
        )
        return "\n".join(lines)


class Runtime:
    """Execution policy for a task graph: worker count and artifact cache.

    One runtime can serve many suites and many ``run`` calls; completed
    artifacts stay memoized in-process by content hash.
    """

    def __init__(self, workers: int = 1, cache_dir: str | None = None) -> None:
        self.workers = max(1, int(workers))
        self.cache = ArtifactCache(cache_dir)
        self._memo: dict[str, Any] = {}
        self.report = RunReport()

    def probe(self, graph: TaskGraph, names: list[str] | tuple[str, ...]) -> dict[str, str]:
        """How each task would be satisfied right now, without computing.

        ``"memo"`` (already in-process), ``"cached"`` (disk artifact
        present) or ``"compute"``.  The serving loader uses this to report
        whether a start is warm before paying for :meth:`run`.
        """
        status: dict[str, str] = {}
        for name in dict.fromkeys(names):
            key = graph.content_hash(name)
            if key in self._memo:
                status[name] = "memo"
            elif self.cache.contains(key):
                status[name] = "cached"
            else:
                status[name] = "compute"
        return status

    def run(self, graph: TaskGraph, targets: list[str] | tuple[str, ...]) -> dict[str, Any]:
        """Materialize ``targets``; returns ``{task name: artifact}``."""
        targets = list(dict.fromkeys(targets))
        resolved: dict[str, Any] = {}
        pending: list[str] = []  # topological: deps are planned first
        planned: set[str] = set()

        def plan(name: str) -> None:
            if name in planned:
                return
            planned.add(name)
            key = graph.content_hash(name)
            if key in self._memo:
                resolved[name] = self._memo[key]
                self.report.records.append(TaskRecord(name, "memo", 0.0, key))
                return
            start = time.perf_counter()
            hit, artifact = self.cache.load(key)
            if hit:
                self._memo[key] = artifact
                resolved[name] = artifact
                self.report.records.append(
                    TaskRecord(name, "hit", time.perf_counter() - start, key)
                )
                return
            for dep in graph.task(name).dep_names():
                plan(dep)
            pending.append(name)

        for target in targets:
            plan(target)

        if pending:
            if self.workers == 1 or len(pending) == 1:
                self._run_sequential(graph, pending, resolved)
            else:
                self._run_parallel(graph, pending, resolved)
        return {name: resolved[name] for name in targets}

    # -- execution ------------------------------------------------------------

    def _finish(
        self, graph: TaskGraph, name: str, artifact: Any, seconds: float, resolved: dict
    ) -> None:
        key = graph.content_hash(name)
        self.cache.store(key, name, artifact)
        self._memo[key] = artifact
        resolved[name] = artifact
        self.report.records.append(TaskRecord(name, "computed", seconds, key))

    def _inputs(self, graph: TaskGraph, name: str, resolved: dict) -> dict:
        return {role: resolved[dep] for role, dep in graph.task(name).deps}

    def _run_sequential(self, graph: TaskGraph, pending: list[str], resolved: dict) -> None:
        for name in pending:
            task = graph.task(name)
            artifact, seconds = execute_task(
                task.fn, task.params, self._inputs(graph, name, resolved)
            )
            self._finish(graph, name, artifact, seconds, resolved)

    def _run_parallel(self, graph: TaskGraph, pending: list[str], resolved: dict) -> None:
        in_flight: dict[str, Any] = {}
        remaining = list(pending)
        with ProcessPoolExecutor(max_workers=min(self.workers, len(pending))) as pool:

            def launch() -> None:
                for name in list(remaining):
                    task = graph.task(name)
                    if all(dep in resolved for dep in task.dep_names()):
                        in_flight[name] = pool.submit(
                            execute_task,
                            task.fn,
                            task.params,
                            self._inputs(graph, name, resolved),
                        )
                        remaining.remove(name)

            launch()
            while in_flight:
                done, _ = wait(set(in_flight.values()), return_when=FIRST_COMPLETED)
                for name in [n for n, fut in in_flight.items() if fut in done]:
                    future = in_flight.pop(name)
                    artifact, seconds = future.result()
                    self._finish(graph, name, artifact, seconds, resolved)
                launch()
