"""Schema model and the paper's enhanced schema."""

from repro.schema.enhanced import (
    ColumnAnnotation,
    EnhancedSchema,
    default_enhanced_schema,
)
from repro.schema.model import Column, ColumnType, ForeignKey, Schema, TableDef

__all__ = [
    "Column",
    "ColumnType",
    "ColumnAnnotation",
    "EnhancedSchema",
    "ForeignKey",
    "Schema",
    "TableDef",
    "default_enhanced_schema",
]
