"""The paper's *enhanced schema* (Section 3.3.2).

On top of the structural schema, the enhanced schema exposes the
meta-information that Phase 2 of the augmentation pipeline needs to generate
*meaningful* queries instead of merely executable ones:

* **non-aggregatable columns** — identifiers and codes that must not appear
  under SUM/AVG/MIN/MAX (``AVG(specobjid)`` is executable but meaningless);
* **categorical columns** — low-cardinality columns that are sensible
  GROUP BY keys (``specobj.class``) as opposed to near-unique measurements
  (``specobj.ra``);
* **math-operable columns** — numeric measurement columns on which arithmetic
  between columns is meaningful, partitioned into *math groups* so that only
  commensurable columns are combined (``u - r`` yes, ``length - area`` no);
* **human-readable aliases** for cryptic table/column names (``ra`` →
  "right ascension"), carried on the base :class:`~repro.schema.model.Column`
  and :class:`~repro.schema.model.TableDef` definitions.

An enhanced schema can be auto-profiled from data
(:func:`repro.schema.introspect.profile_database`) and then refined manually
by domain experts — exactly the one-shot manual step the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import SchemaError
from repro.schema.model import Column, ColumnType, Schema, TableDef


@dataclass(frozen=True)
class ColumnAnnotation:
    """Pipeline-facing metadata for one column."""

    aggregatable: bool = True
    categorical: bool = False
    math_group: str | None = None

    @property
    def math_operable(self) -> bool:
        return self.math_group is not None


@dataclass(frozen=True)
class ColumnStats:
    """Value statistics of one column at profiling time.

    The static analyzer's cost pass uses these to prove predicates
    unsatisfiable (``year > max(year)``) without executing.  The engine's
    databases are frozen after population, so profiled statistics stay exact.
    """

    n_rows: int
    n_distinct: int
    n_null: int
    min_value: int | float | str | None = None
    max_value: int | float | str | None = None
    #: The full distinct-value set when small enough to store.
    values: frozenset | None = None


@dataclass
class EnhancedSchema:
    """A schema plus per-column annotations (the paper's "enhanced schema").

    Annotations default to the most permissive interpretation consistent with
    the column type: numeric columns are aggregatable, nothing is categorical
    and nothing is math-operable until profiled or annotated.
    """

    schema: Schema
    annotations: dict[tuple[str, str], ColumnAnnotation] = field(default_factory=dict)
    stats: dict[tuple[str, str], ColumnStats] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for table, column in self.annotations:
            self.schema.column(table, column)  # raises SchemaError if missing
        for table, column in self.stats:
            self.schema.column(table, column)

    # -- annotation access ---------------------------------------------------

    def annotation(self, table: str, column: str) -> ColumnAnnotation:
        """The annotation for ``table.column`` (a default when unannotated)."""
        self.schema.column(table, column)
        return self.annotations.get((table.lower(), column.lower()), ColumnAnnotation())

    def annotate(self, table: str, column: str, annotation: ColumnAnnotation) -> None:
        """Set (or replace) the annotation for a column.

        This is the manual-refinement hook the paper gives to domain experts.
        """
        self.schema.column(table, column)  # validate
        self.annotations[(table.lower(), column.lower())] = annotation

    def mark_non_aggregatable(self, table: str, *columns: str) -> None:
        for column in columns:
            current = self.annotation(table, column)
            self.annotate(table, column, replace(current, aggregatable=False))

    def mark_categorical(self, table: str, *columns: str) -> None:
        for column in columns:
            current = self.annotation(table, column)
            self.annotate(table, column, replace(current, categorical=True))

    def mark_math_group(self, table: str, group: str, *columns: str) -> None:
        for column in columns:
            if not self.schema.column(table, column).type.is_numeric:
                raise SchemaError(
                    f"math group on non-numeric column {table}.{column}"
                )
            current = self.annotation(table, column)
            self.annotate(table, column, replace(current, math_group=group))

    # -- column statistics (used by the static analyzer's cost pass) ---------

    def record_stats(self, table: str, column: str, stats: ColumnStats) -> None:
        self.schema.column(table, column)  # validate
        self.stats[(table.lower(), column.lower())] = stats

    def column_stats(self, table: str, column: str) -> ColumnStats | None:
        return self.stats.get((table.lower(), column.lower()))

    def table_rows(self, table: str) -> int | None:
        """Profiled row count of ``table`` (None when never profiled)."""
        lowered = table.lower()
        for (stats_table, _), stats in self.stats.items():
            if stats_table == lowered:
                return stats.n_rows
        return None

    # -- constrained column pools (used by the Phase-2 samplers) -------------

    def aggregatable_columns(self, table: str) -> list[Column]:
        """Columns on which SUM/AVG are meaningful (numeric + aggregatable)."""
        tdef = self.schema.table(table)
        return [
            c
            for c in tdef.columns
            if c.type.is_numeric and self.annotation(table, c.name).aggregatable
        ]

    def categorical_columns(self, table: str) -> list[Column]:
        """Columns that are sensible GROUP BY keys."""
        tdef = self.schema.table(table)
        return [c for c in tdef.columns if self.annotation(table, c.name).categorical]

    def math_columns(self, table: str, group: str | None = None) -> list[Column]:
        """Math-operable columns, optionally restricted to one math group."""
        tdef = self.schema.table(table)
        result = []
        for c in tdef.columns:
            ann = self.annotation(table, c.name)
            if ann.math_group is None:
                continue
            if group is not None and ann.math_group != group:
                continue
            result.append(c)
        return result

    def math_groups(self, table: str) -> list[str]:
        """Distinct math groups present on ``table``, in column order."""
        seen: list[str] = []
        for c in self.schema.table(table).columns:
            ann = self.annotation(table, c.name)
            if ann.math_group is not None and ann.math_group not in seen:
                seen.append(ann.math_group)
        return seen

    def projectable_columns(self, table: str) -> list[Column]:
        """All columns usable as plain projections/filters."""
        return list(self.schema.table(table).columns)

    # -- readable rendering ----------------------------------------------------

    def readable_column(self, table: str, column: str) -> str:
        """Human-readable form, e.g. ``specobj.z`` → "redshift"."""
        return self.schema.column(table, column).readable

    def readable_table(self, table: str) -> str:
        """Human-readable form, e.g. ``specobj`` → "spectroscopic object"."""
        return self.schema.table(table).readable

    def readable_sql(self, sql_text: str) -> str:
        """Rewrite a SQL string with readable table/column names.

        This is the paper's "semantically meaningful SQL" transformation used
        to aid both the SQL-to-NL model and the human experts: ``s.z`` becomes
        ``spectroscopic_object.redshift``.
        """
        from repro.sql import ast as sql_ast
        from repro.sql import parse, to_sql

        query = parse(sql_text)
        alias_to_table: dict[str, str] = {}
        for select in query.selects():
            for ref in select.table_refs():
                alias_to_table[ref.binding.lower()] = ref.name
        for sub in query.subqueries():
            for select in sub.selects():
                for ref in select.table_refs():
                    alias_to_table[ref.binding.lower()] = ref.name

        def rewrite(node: sql_ast.Node) -> sql_ast.Node:
            if isinstance(node, sql_ast.TableRef):
                readable = self.readable_table(node.name).replace(" ", "_")
                return sql_ast.TableRef(name=readable, alias=None)
            if isinstance(node, sql_ast.ColumnRef):
                table = alias_to_table.get((node.table or "").lower())
                if table is None and node.table is None:
                    table = self._owning_table(node.column, alias_to_table.values())
                if table is None:
                    return node
                readable_t = self.readable_table(table).replace(" ", "_")
                readable_c = self.readable_column(table, node.column).replace(" ", "_")
                return sql_ast.ColumnRef(table=readable_t, column=readable_c)
            return node

        return to_sql(_map_tree(query, rewrite))

    def _owning_table(self, column: str, candidates) -> str | None:
        for table in candidates:
            if self.schema.table(table).has_column(column):
                return table
        return None


def _map_tree(node, fn):
    """Rebuild an AST bottom-up, applying ``fn`` to every node."""
    from dataclasses import fields as dc_fields

    kwargs = {}
    for f in dc_fields(node):
        value = getattr(node, f.name)
        if hasattr(value, "walk") and hasattr(value, "children"):
            kwargs[f.name] = _map_tree(value, fn)
        elif isinstance(value, tuple):
            kwargs[f.name] = tuple(
                _map_tree(v, fn) if hasattr(v, "walk") else v for v in value
            )
        else:
            kwargs[f.name] = value
    rebuilt = type(node)(**kwargs)
    return fn(rebuilt)


def default_enhanced_schema(schema: Schema) -> EnhancedSchema:
    """A heuristic enhanced schema derived from names and types alone.

    Useful as a zero-data starting point; :func:`repro.schema.introspect.
    profile_database` produces a better one when data is available.
    """
    enhanced = EnhancedSchema(schema=schema)
    for table in schema.tables:
        for column in table.columns:
            if _looks_like_identifier(column, table):
                enhanced.mark_non_aggregatable(table.name, column.name)
    return enhanced


def _looks_like_identifier(column: Column, table: TableDef) -> bool:
    name = column.name.lower()
    if table.primary_key and name == table.primary_key.lower():
        return True
    if name.endswith(("id", "_key", "_code", "code")) or name == "id":
        return True
    return column.type is ColumnType.TEXT
