"""Automatic enhanced-schema profiling from database content.

The paper builds the enhanced schema "automatically ... [which] can also be
refined manually by domain experts".  This module is the automatic half: it
inspects a populated :class:`~repro.engine.Database` and derives the
per-column annotations that Phase 2 of the pipeline needs.

Heuristics (all thresholds are explicit keyword arguments so experiments can
vary them):

* a column is **non-aggregatable** when it is a primary key, a foreign key
  endpoint, or its name looks like an identifier/code;
* a column is **categorical** when its distinct-value count is small in
  absolute terms *and* small relative to the row count (the paper's
  "low cardinality" criterion that rules out ``GROUP BY s.ra``);
* numeric non-identifier columns are **math-operable**; columns in the same
  table whose names share a unit-like suffix pattern (single-letter
  photometric bands, ``*_mag``, ``*_count``, …) fall in the same math group,
  otherwise each table contributes one default group per column prefix.
"""

from __future__ import annotations

from repro.engine.database import Database
from repro.schema.enhanced import ColumnAnnotation, EnhancedSchema
from repro.schema.model import ColumnType

_IDENTIFIER_SUFFIXES = ("id", "_key", "_code", "_uri", "_url")


def profile_database(
    database: Database,
    max_categorical_values: int = 50,
    max_categorical_ratio: float = 0.2,
) -> EnhancedSchema:
    """Derive an :class:`EnhancedSchema` from a populated database."""
    schema = database.schema
    enhanced = EnhancedSchema(schema=schema)

    fk_endpoints = set()
    for fk in schema.foreign_keys:
        fk_endpoints.add((fk.table.lower(), fk.column.lower()))
        fk_endpoints.add((fk.ref_table.lower(), fk.ref_column.lower()))

    for table_def in schema.tables:
        table = database.table(table_def.name)
        rows = len(table)
        for column in table_def.columns:
            key = (table_def.name.lower(), column.name.lower())
            is_identifier = (
                key in fk_endpoints
                or (table_def.primary_key or "").lower() == column.name.lower()
                or _identifier_name(column.name)
            )
            categorical = False
            if rows:
                distinct = len(set(table.column_values(column.name))) or 1
                low_ratio = distinct / rows <= max_categorical_ratio
                # Small-table fallback: a handful of repeating values is
                # categorical even when the ratio test is too coarse.
                few_repeating = distinct <= 10 and distinct < rows
                categorical = (
                    distinct <= max_categorical_values
                    and (low_ratio or few_repeating)
                    and not is_identifier
                )
            math_group = None
            if column.type.is_numeric and not is_identifier:
                math_group = _math_group(table_def.name, column.name)
            enhanced.annotate(
                table_def.name,
                column.name,
                ColumnAnnotation(
                    aggregatable=column.type.is_numeric and not is_identifier,
                    categorical=categorical,
                    math_group=math_group,
                ),
            )
    return enhanced


def _identifier_name(name: str) -> bool:
    lowered = name.lower()
    if lowered == "id":
        return True
    return lowered.endswith(_IDENTIFIER_SUFFIXES)


#: Names of the SDSS photometric band filters — the canonical example of a
#: math group in the paper (``u - r < 2.22``).
_PHOTOMETRIC_BANDS = frozenset({"u", "g", "r", "i", "z"})


def _math_group(table: str, column: str) -> str:
    lowered = column.lower()
    if lowered in _PHOTOMETRIC_BANDS:
        return f"{table.lower()}:magnitude"
    if "_" in lowered:
        suffix = lowered.rsplit("_", 1)[-1]
        return f"{table.lower()}:{suffix}"
    return f"{table.lower()}:{lowered}"
