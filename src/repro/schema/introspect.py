"""Automatic enhanced-schema profiling from database content.

The paper builds the enhanced schema "automatically ... [which] can also be
refined manually by domain experts".  This module is the automatic half: it
inspects a populated :class:`~repro.engine.Database` and derives the
per-column annotations that Phase 2 of the pipeline needs.

Heuristics (all thresholds are explicit keyword arguments so experiments can
vary them):

* a column is **non-aggregatable** when it is a primary key, a foreign key
  endpoint, or its name looks like an identifier/code;
* a column is **categorical** when its distinct-value count is small in
  absolute terms *and* small relative to the row count (the paper's
  "low cardinality" criterion that rules out ``GROUP BY s.ra``);
* numeric non-identifier columns are **math-operable**; columns in the same
  table whose names share a unit-like suffix pattern (single-letter
  photometric bands, ``*_mag``, ``*_count``, …) fall in the same math group,
  otherwise each table contributes one default group per column prefix.
"""

from __future__ import annotations

from repro.engine.database import Database
from repro.schema.enhanced import ColumnAnnotation, ColumnStats, EnhancedSchema

_IDENTIFIER_SUFFIXES = ("id", "_key", "_code", "_uri", "_url")

#: Distinct-value sets up to this size are stored verbatim in the profile,
#: letting the analyzer's cost pass decide membership exactly.
_MAX_STORED_VALUES = 50


def profile_database(
    database: Database,
    max_categorical_values: int = 50,
    max_categorical_ratio: float = 0.2,
) -> EnhancedSchema:
    """Derive an :class:`EnhancedSchema` from a populated database."""
    schema = database.schema
    enhanced = EnhancedSchema(schema=schema)

    fk_endpoints = set()
    for fk in schema.foreign_keys:
        fk_endpoints.add((fk.table.lower(), fk.column.lower()))
        fk_endpoints.add((fk.ref_table.lower(), fk.ref_column.lower()))

    for table_def in schema.tables:
        table = database.table(table_def.name)
        rows = len(table)
        for column in table_def.columns:
            key = (table_def.name.lower(), column.name.lower())
            is_identifier = (
                key in fk_endpoints
                or (table_def.primary_key or "").lower() == column.name.lower()
                or _identifier_name(column.name)
            )
            values = table.column_values(column.name)
            non_null = [v for v in values if v is not None]
            distinct_values = set(non_null)
            categorical = False
            if rows:
                distinct = len(set(values)) or 1
                low_ratio = distinct / rows <= max_categorical_ratio
                # Small-table fallback: a handful of repeating values is
                # categorical even when the ratio test is too coarse.
                few_repeating = distinct <= 10 and distinct < rows
                categorical = (
                    distinct <= max_categorical_values
                    and (low_ratio or few_repeating)
                    and not is_identifier
                )
            math_group = None
            if column.type.is_numeric and not is_identifier:
                math_group = _math_group(table_def.name, column.name)
            enhanced.annotate(
                table_def.name,
                column.name,
                ColumnAnnotation(
                    aggregatable=column.type.is_numeric and not is_identifier,
                    categorical=categorical,
                    math_group=math_group,
                ),
            )
            enhanced.record_stats(
                table_def.name, column.name, _column_stats(rows, non_null, distinct_values)
            )
    return enhanced


def _column_stats(n_rows: int, non_null: list, distinct_values: set) -> ColumnStats:
    try:
        min_value = min(non_null) if non_null else None
        max_value = max(non_null) if non_null else None
    except TypeError:  # mixed-type column; no usable ordering
        min_value = max_value = None
    return ColumnStats(
        n_rows=n_rows,
        n_distinct=len(distinct_values),
        n_null=n_rows - len(non_null),
        min_value=min_value,
        max_value=max_value,
        values=(
            frozenset(distinct_values)
            if len(distinct_values) <= _MAX_STORED_VALUES
            else None
        ),
    )


def _identifier_name(name: str) -> bool:
    lowered = name.lower()
    if lowered == "id":
        return True
    return lowered.endswith(_IDENTIFIER_SUFFIXES)


#: Names of the SDSS photometric band filters — the canonical example of a
#: math group in the paper (``u - r < 2.22``).
_PHOTOMETRIC_BANDS = frozenset({"u", "g", "r", "i", "z"})


def _math_group(table: str, column: str) -> str:
    lowered = column.lower()
    if lowered in _PHOTOMETRIC_BANDS:
        return f"{table.lower()}:magnitude"
    if "_" in lowered:
        suffix = lowered.rsplit("_", 1)[-1]
        return f"{table.lower()}:{suffix}"
    return f"{table.lower()}:{lowered}"
