"""Relational schema model: columns, tables, foreign keys and the schema graph.

This is the structural backbone shared by the execution engine, the SemQL
converter, the enhanced schema (``repro.schema.enhanced``) and the NL-to-SQL
systems.  A :class:`Schema` is immutable once constructed and validates its
own referential integrity eagerly, so downstream code never has to re-check.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SchemaError


class ColumnType(enum.Enum):
    """Logical column types used by the engine and the value samplers."""

    INTEGER = "integer"
    REAL = "real"
    TEXT = "text"
    BOOLEAN = "boolean"
    DATE = "date"  # stored as ISO-8601 text; ordered comparisons work

    @property
    def is_numeric(self) -> bool:
        return self in (ColumnType.INTEGER, ColumnType.REAL)


@dataclass(frozen=True)
class Column:
    """A column definition.

    ``alias`` is the human-readable name from the paper's enhanced schema
    (e.g. ``ra`` → "right ascension"); it defaults to the physical name with
    underscores replaced by spaces so every column always has *some* natural
    language surface form.
    """

    name: str
    type: ColumnType
    alias: str | None = None
    nullable: bool = True

    @property
    def readable(self) -> str:
        """The natural-language surface form of this column."""
        if self.alias:
            return self.alias
        return self.name.replace("_", " ")


@dataclass(frozen=True)
class ForeignKey:
    """A foreign key edge: ``table.column`` references ``ref_table.ref_column``."""

    table: str
    column: str
    ref_table: str
    ref_column: str


@dataclass(frozen=True)
class TableDef:
    """A table definition with ordered columns and an optional primary key."""

    name: str
    columns: tuple[Column, ...]
    primary_key: str | None = None
    alias: str | None = None

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in table {self.name!r}")
        if self.primary_key is not None and self.primary_key not in names:
            raise SchemaError(
                f"primary key {self.primary_key!r} not a column of {self.name!r}"
            )

    @property
    def readable(self) -> str:
        """The natural-language surface form of this table."""
        if self.alias:
            return self.alias
        return self.name.replace("_", " ")

    def column(self, name: str) -> Column:
        """Look up a column by (case-insensitive) name."""
        lowered = name.lower()
        for col in self.columns:
            if col.name.lower() == lowered:
                return col
        raise SchemaError(f"no column {name!r} in table {self.name!r}")

    def has_column(self, name: str) -> bool:
        lowered = name.lower()
        return any(c.name.lower() == lowered for c in self.columns)

    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]


@dataclass(frozen=True)
class Schema:
    """An immutable database schema: tables plus foreign-key edges.

    Construction validates that every foreign key references existing
    tables/columns and that table names are unique.
    """

    name: str
    tables: tuple[TableDef, ...]
    foreign_keys: tuple[ForeignKey, ...] = ()
    _by_name: dict[str, TableDef] = field(
        default_factory=dict, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        by_name: dict[str, TableDef] = {}
        for table in self.tables:
            key = table.name.lower()
            if key in by_name:
                raise SchemaError(f"duplicate table {table.name!r} in schema {self.name!r}")
            by_name[key] = table
        object.__setattr__(self, "_by_name", by_name)
        for fk in self.foreign_keys:
            src = self.table(fk.table)
            dst = self.table(fk.ref_table)
            if not src.has_column(fk.column):
                raise SchemaError(f"foreign key column {fk.table}.{fk.column} missing")
            if not dst.has_column(fk.ref_column):
                raise SchemaError(
                    f"foreign key target {fk.ref_table}.{fk.ref_column} missing"
                )

    # -- lookups ------------------------------------------------------------

    def table(self, name: str) -> TableDef:
        """Look up a table by (case-insensitive) name."""
        try:
            return self._by_name[name.lower()]
        except KeyError:
            raise SchemaError(f"no table {name!r} in schema {self.name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._by_name

    def table_names(self) -> list[str]:
        return [t.name for t in self.tables]

    def column(self, table: str, column: str) -> Column:
        return self.table(table).column(column)

    # -- graph queries -------------------------------------------------------

    def foreign_keys_of(self, table: str) -> list[ForeignKey]:
        """Foreign keys whose source *or* target is ``table``."""
        lowered = table.lower()
        return [
            fk
            for fk in self.foreign_keys
            if fk.table.lower() == lowered or fk.ref_table.lower() == lowered
        ]

    def join_condition(self, left: str, right: str) -> ForeignKey | None:
        """The FK edge connecting two tables, if one exists (either direction)."""
        l, r = left.lower(), right.lower()
        for fk in self.foreign_keys:
            pair = (fk.table.lower(), fk.ref_table.lower())
            if pair == (l, r) or pair == (r, l):
                return fk
        return None

    def join_path(self, start: str, goal: str) -> list[str] | None:
        """Shortest table path from ``start`` to ``goal`` along FK edges.

        Returns the list of table names including both endpoints, or None if
        the tables are not connected.  Used by the NL-to-SQL systems to infer
        the FROM clause from a set of mentioned tables.
        """
        start, goal = start.lower(), goal.lower()
        if start == goal:
            return [self.table(start).name]
        adjacency: dict[str, set[str]] = {t.name.lower(): set() for t in self.tables}
        for fk in self.foreign_keys:
            adjacency[fk.table.lower()].add(fk.ref_table.lower())
            adjacency[fk.ref_table.lower()].add(fk.table.lower())
        frontier = [[start]]
        seen = {start}
        while frontier:
            next_frontier: list[list[str]] = []
            for path in frontier:
                for neighbour in sorted(adjacency[path[-1]]):
                    if neighbour in seen:
                        continue
                    extended = path + [neighbour]
                    if neighbour == goal:
                        return [self.table(n).name for n in extended]
                    seen.add(neighbour)
                    next_frontier.append(extended)
            frontier = next_frontier
        return None

    def total_columns(self) -> int:
        """Total number of columns across all tables (Table 1 statistic)."""
        return sum(len(t.columns) for t in self.tables)
