"""SemQL intermediate representation, SQL↔SemQL conversion and templates."""

from repro.semql import nodes
from repro.semql.from_sql import sql_to_semql
from repro.semql.templates import Template, dedupe_templates, extract_template, signature_of
from repro.semql.to_sql import semql_to_ast, semql_to_sql

__all__ = [
    "nodes",
    "sql_to_semql",
    "semql_to_ast",
    "semql_to_sql",
    "Template",
    "extract_template",
    "dedupe_templates",
    "signature_of",
]
