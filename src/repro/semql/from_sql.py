"""Lifting SQL ASTs into SemQL trees (the paper's Phase-1 ingestion step).

The conversion is schema-aware: unqualified columns are resolved against the
tables in scope, and equality comparisons between foreign-key-linked columns
are recognised as join conditions and dropped (SemQL reconstructs joins from
the schema graph when lowering back to SQL — see :mod:`repro.semql.to_sql`).

Queries outside the SemQL subset (correlated predicates, EXISTS, IS NULL,
derived tables) raise :class:`~repro.errors.SemQLError`; the seeding phase
skips such queries, exactly as the original pipeline restricts itself to the
SemQL-expressible portion of the seed set.
"""

from __future__ import annotations

from repro.errors import SemQLError
from repro.schema.model import Schema
from repro.semql import nodes as sq
from repro.sql import ast


def sql_to_semql(query: ast.Query, schema: Schema) -> sq.Z:
    """Convert a parsed SQL query into a SemQL :class:`~repro.semql.nodes.Z`."""
    left = _select_to_r(query.select, schema)
    if query.set_op is None:
        return sq.Z(left=left)
    if query.right is None or query.right.set_op is not None:
        raise SemQLError("SemQL supports at most one set operation")
    right = _select_to_r(query.right.select, schema)
    return sq.Z(left=left, set_op=query.set_op, right=right)


def _select_to_r(select: ast.Select, schema: Schema) -> sq.R:
    scope = _Scope(select, schema)

    attributes = tuple(
        _item_to_attribute(item, scope) for item in select.items
    )
    group = None
    if select.group_by:
        group = tuple(
            _column_expr(expr, scope, allow_math=False) for expr in select.group_by
        )

    sem_select = sq.SemSelect(
        attributes=attributes, distinct=select.distinct, group=group
    )

    filter_node = None
    where_filter = (
        _expr_to_filter(select.where, scope) if select.where is not None else None
    )
    having_filter = (
        _expr_to_filter(select.having, scope) if select.having is not None else None
    )
    if where_filter is not None and having_filter is not None:
        filter_node = sq.FilterNode(op="and", left=where_filter, right=having_filter)
    else:
        filter_node = where_filter or having_filter

    order = None
    if select.order_by:
        first = select.order_by[0]
        order = sq.Order(
            direction="desc" if first.desc else "asc",
            attribute=_expr_to_attribute(first.expr, scope),
            limit=select.limit,
        )
    elif select.limit is not None:
        raise SemQLError("LIMIT without ORDER BY is outside the SemQL subset")

    return sq.R(
        select=sem_select,
        filter=filter_node,
        order=order,
        from_table=sq.TableLeaf(scope.tables[0]),
    )


class _Scope:
    """Alias resolution for one SELECT core."""

    def __init__(self, select: ast.Select, schema: Schema) -> None:
        self.schema = schema
        self.alias_to_table: dict[str, str] = {}
        self.tables: list[str] = []
        for source in select.from_tables:
            if isinstance(source, ast.SubqueryRef):
                raise SemQLError("derived tables are outside the SemQL subset")
            self._add(source)
        for join in select.joins:
            self._add(join.table)
        if not self.tables:
            raise SemQLError("SemQL queries need a FROM clause")

    def _add(self, ref: ast.TableRef) -> None:
        table = self.schema.table(ref.name)  # validates existence
        self.alias_to_table[ref.binding.lower()] = table.name
        if table.name not in self.tables:
            self.tables.append(table.name)

    def resolve(self, ref: ast.ColumnRef) -> sq.ColumnLeaf:
        if ref.table is not None:
            table = self.alias_to_table.get(ref.table.lower())
            if table is None:
                raise SemQLError(f"unknown table alias {ref.table!r}")
            column = self.schema.column(table, ref.column)  # validates
            return sq.ColumnLeaf(table=sq.TableLeaf(table), name=column.name)
        for table in self.tables:
            if self.schema.table(table).has_column(ref.column):
                column = self.schema.column(table, ref.column)
                return sq.ColumnLeaf(table=sq.TableLeaf(table), name=column.name)
        raise SemQLError(f"cannot resolve column {ref.column!r}")


def _item_to_attribute(item: ast.SelectItem, scope: _Scope) -> sq.A:
    return _expr_to_attribute(item.expr, scope)


def _expr_to_attribute(expr: ast.Expr, scope: _Scope) -> sq.A:
    if isinstance(expr, ast.FuncCall) and expr.name.lower() in ast.AGGREGATE_FUNCTIONS:
        arg = expr.args[0]
        if isinstance(arg, ast.Star):
            column: sq.SemNode = sq.StarLeaf()
        else:
            column = _column_expr(arg, scope, allow_math=True)
        return sq.A(agg=expr.name.lower(), column=column, distinct=expr.distinct)
    column = _column_expr(expr, scope, allow_math=True)
    return sq.A(agg="none", column=column)


def _column_expr(expr: ast.Expr, scope: _Scope, allow_math: bool) -> sq.SemNode:
    if isinstance(expr, ast.ColumnRef):
        return scope.resolve(expr)
    if isinstance(expr, ast.Star):
        return sq.StarLeaf()
    if isinstance(expr, ast.BinaryOp) and allow_math:
        if not isinstance(expr.left, ast.ColumnRef) or not isinstance(
            expr.right, ast.ColumnRef
        ):
            raise SemQLError("math expressions must combine two columns")
        if expr.op not in sq.MATH_OPS:
            raise SemQLError(f"math operator {expr.op!r} not in SemQL grammar")
        return sq.MathExpr(
            op=expr.op,
            left=scope.resolve(expr.left),
            right=scope.resolve(expr.right),
        )
    raise SemQLError(f"{type(expr).__name__} is outside the SemQL column grammar")


def _expr_to_filter(expr: ast.Expr, scope: _Scope):
    """Convert a WHERE/HAVING expression into a SemQL filter tree.

    Returns None when the expression consists only of join conditions.
    """
    if isinstance(expr, ast.BoolOp):
        parts = [_expr_to_filter(operand, scope) for operand in expr.operands]
        parts = [p for p in parts if p is not None]
        if not parts:
            return None
        tree = parts[0]
        for part in parts[1:]:
            tree = sq.FilterNode(op=expr.op, left=tree, right=part)
        return tree

    if isinstance(expr, ast.Comparison):
        return _comparison_to_condition(expr, scope)

    if isinstance(expr, ast.Between):
        attribute = _expr_to_attribute(expr.expr, scope)
        if expr.negated:
            raise SemQLError("NOT BETWEEN is outside the SemQL subset")
        return sq.Condition(
            op="between",
            attribute=attribute,
            value=_literal_to_value(expr.low),
            value2=_literal_to_value(expr.high),
        )

    if isinstance(expr, ast.InSubquery):
        attribute = _expr_to_attribute(expr.expr, scope)
        sub = sql_to_semql(expr.query, scope.schema)
        if sub.set_op is not None:
            raise SemQLError("set operations inside subqueries are unsupported")
        op = "not_in" if expr.negated else "in"
        return sq.Condition(op=op, attribute=attribute, subquery=sub.left)

    if isinstance(expr, ast.InList):
        raise SemQLError("IN (value list) is outside the SemQL subset")

    raise SemQLError(f"{type(expr).__name__} is outside the SemQL filter grammar")


def _comparison_to_condition(expr: ast.Comparison, scope: _Scope):
    if isinstance(expr.left, ast.ColumnRef) and isinstance(expr.right, ast.ColumnRef):
        left = scope.resolve(expr.left)
        right = scope.resolve(expr.right)
        if expr.op == "=" and left.table.name != right.table.name:
            fk = scope.schema.join_condition(left.table.name, right.table.name)
            if fk is not None:
                return None  # join condition — reconstructed from the schema
        raise SemQLError("column-to-column comparisons are outside SemQL")

    attribute = _expr_to_attribute(expr.left, scope)

    if isinstance(expr.right, ast.ScalarSubquery):
        sub = sql_to_semql(expr.right.query, scope.schema)
        if sub.set_op is not None:
            raise SemQLError("set operations inside subqueries are unsupported")
        return sq.Condition(op=expr.op, attribute=attribute, subquery=sub.left)

    op = {"like": "like", "not like": "not_like"}.get(expr.op, expr.op)
    return sq.Condition(op=op, attribute=attribute, value=_literal_to_value(expr.right))


def _literal_to_value(expr: ast.Expr) -> sq.ValueLeaf:
    if isinstance(expr, ast.Literal):
        return sq.ValueLeaf(value=expr.value)
    if isinstance(expr, ast.UnaryMinus) and isinstance(expr.operand, ast.Literal):
        operand = expr.operand.value
        if isinstance(operand, (int, float)):
            return sq.ValueLeaf(value=-operand)
    raise SemQLError("filter values must be literals in SemQL")
