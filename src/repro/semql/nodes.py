"""SemQL: the IRNet-style intermediate representation used by the paper.

SemQL abstracts a SQL query into a small tree whose leaves are tables (T),
columns (C) and values (V).  The paper's pipeline (Figure 1 / Figure 2)
extracts *templates* from seed queries by replacing those leaves with
positional placeholders, then re-instantiates the placeholders with sampled
database content (Algorithm 1).  The paper also extends the original SemQL
grammar with *math operators* between columns to support SDSS astrophysics
queries — :class:`MathExpr` below.

Two leaf flavours share each position in the tree:

* concrete leaves (:class:`TableLeaf`, :class:`ColumnLeaf`, :class:`ValueLeaf`)
  appear in SemQL trees lifted from real SQL;
* slot leaves (:class:`TableSlot`, :class:`ColumnSlot`, :class:`ValueSlot`)
  appear in templates and carry the quadruple positions of Figure 2.

Grammar sketch (one optional set operation, as in Spider)::

    Z      := R | R set_op R
    R      := Select [Filter] [Order]
    Select := distinct? A+ [group: C+]
    A      := agg (C | MathExpr | Star)
    Filter := and(F, F) | or(F, F) | cond(op, A, V [, V2]) | cond(op, A, R)
    Order  := direction A [limit]
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, fields

#: Aggregator vocabulary, in IRNet's canonical order.
AGG_OPS = ("none", "max", "min", "count", "sum", "avg")

#: Filter condition operators supported by the grammar.
FILTER_OPS = (
    "=", "!=", "<", ">", "<=", ">=",
    "between", "like", "not_like", "in", "not_in",
)

#: Math operators of the paper's SDSS grammar extension.
MATH_OPS = ("+", "-", "*", "/")


class SemNode:
    """Base class with generic traversal, mirroring the SQL AST."""

    def children(self) -> Iterator["SemNode"]:
        for f in fields(self):  # type: ignore[arg-type]
            value = getattr(self, f.name)
            if isinstance(value, SemNode):
                yield value
            elif isinstance(value, tuple):
                for item in value:
                    if isinstance(item, SemNode):
                        yield item

    def walk(self) -> Iterator["SemNode"]:
        yield self
        for child in self.children():
            yield from child.walk()


# ---------------------------------------------------------------------------
# Leaves — concrete and slot flavours
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TableLeaf(SemNode):
    """A concrete table reference (the T leaf)."""

    name: str


@dataclass(frozen=True)
class TableSlot(SemNode):
    """A template placeholder T(pos)."""

    position: int


@dataclass(frozen=True)
class ColumnLeaf(SemNode):
    """A concrete column reference (the C leaf), owned by a table leaf/slot."""

    table: TableLeaf | TableSlot
    name: str


@dataclass(frozen=True)
class ColumnSlot(SemNode):
    """A template placeholder C(pos), owned by a table leaf/slot."""

    table: TableLeaf | TableSlot
    position: int


@dataclass(frozen=True)
class ValueLeaf(SemNode):
    """A concrete literal value (the V leaf)."""

    value: int | float | str | bool | None


@dataclass(frozen=True)
class ValueSlot(SemNode):
    """A template placeholder V(pos)."""

    position: int


@dataclass(frozen=True)
class StarLeaf(SemNode):
    """``*`` — only meaningful under COUNT."""


ColumnExpr = "ColumnLeaf | ColumnSlot | StarLeaf | MathExpr"


@dataclass(frozen=True)
class MathExpr(SemNode):
    """Arithmetic between two columns — the paper's grammar extension."""

    op: str
    left: ColumnLeaf | ColumnSlot
    right: ColumnLeaf | ColumnSlot

    def __post_init__(self) -> None:
        if self.op not in MATH_OPS:
            raise ValueError(f"unknown math operator {self.op!r}")


# ---------------------------------------------------------------------------
# Attributes, select, filter, order
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class A(SemNode):
    """An attribute: aggregator + column expression (Figure 2's quadruple
    minus the value position, which lives on the condition)."""

    agg: str
    column: SemNode  # ColumnLeaf | ColumnSlot | StarLeaf | MathExpr
    distinct: bool = False

    def __post_init__(self) -> None:
        if self.agg not in AGG_OPS:
            raise ValueError(f"unknown aggregator {self.agg!r}")

    @property
    def is_aggregated(self) -> bool:
        return self.agg != "none"


@dataclass(frozen=True)
class SemSelect(SemNode):
    """The projection list plus the (explicit or inferred) grouping keys.

    ``group`` of ``None`` means "infer": when the projection mixes aggregated
    and plain attributes, the plain ones become GROUP BY keys — IRNet's
    convention, which the paper's generated queries follow.
    """

    attributes: tuple[A, ...]
    distinct: bool = False
    group: tuple[SemNode, ...] | None = None  # ColumnLeaf/ColumnSlot keys


@dataclass(frozen=True)
class Condition(SemNode):
    """One filter condition over an attribute.

    Exactly one of ``value``/``subquery`` is set for unary operators;
    ``between`` also uses ``value2``.
    """

    op: str
    attribute: A
    value: SemNode | None = None  # ValueLeaf | ValueSlot
    value2: SemNode | None = None
    subquery: "R | None" = None

    def __post_init__(self) -> None:
        if self.op not in FILTER_OPS:
            raise ValueError(f"unknown filter operator {self.op!r}")


@dataclass(frozen=True)
class FilterNode(SemNode):
    """AND/OR combination of two filters (IRNet keeps filters binary)."""

    op: str  # "and" | "or"
    left: "FilterNode | Condition"
    right: "FilterNode | Condition"


@dataclass(frozen=True)
class Order(SemNode):
    """ORDER BY direction over an attribute; ``limit`` makes it the
    Superlative production."""

    direction: str  # "asc" | "desc"
    attribute: A
    limit: int | None = None


@dataclass(frozen=True)
class R(SemNode):
    """A single query root: Select [Filter] [Order].

    ``from_table`` pins the query's primary table explicitly; without it a
    ``SELECT COUNT(*) FROM t`` tree would reference no table at all (the
    star leaf carries none) and could not be lowered back to SQL.
    """

    select: SemSelect
    filter: "FilterNode | Condition | None" = None
    order: Order | None = None
    from_table: "TableLeaf | TableSlot | None" = None


@dataclass(frozen=True)
class Z(SemNode):
    """The top rule: one R, or two combined by a set operation."""

    left: R
    set_op: str | None = None  # "union" | "intersect" | "except"
    right: R | None = None


# ---------------------------------------------------------------------------
# Tree utilities
# ---------------------------------------------------------------------------


def is_template(node: SemNode) -> bool:
    """True if any leaf under ``node`` is a slot placeholder."""
    return any(
        isinstance(n, (TableSlot, ColumnSlot, ValueSlot)) for n in node.walk()
    )


def tables_of(node: SemNode) -> list[str]:
    """Distinct concrete table names under ``node``, first-occurrence order."""
    seen: dict[str, None] = {}
    for n in node.walk():
        if isinstance(n, TableLeaf):
            seen.setdefault(n.name, None)
    return list(seen)


def conditions_of(node: SemNode) -> list[Condition]:
    """All filter conditions under ``node`` in pre-order."""
    return [n for n in node.walk() if isinstance(n, Condition)]


def attributes_of(node: SemNode) -> list[A]:
    """All attributes under ``node`` in pre-order."""
    return [n for n in node.walk() if isinstance(n, A)]


def map_tree(node: SemNode, fn) -> SemNode:
    """Rebuild a SemQL tree bottom-up, applying ``fn`` to every node."""
    kwargs = {}
    for f in fields(node):  # type: ignore[arg-type]
        value = getattr(node, f.name)
        if isinstance(value, SemNode):
            kwargs[f.name] = map_tree(value, fn)
        elif isinstance(value, tuple):
            kwargs[f.name] = tuple(
                map_tree(v, fn) if isinstance(v, SemNode) else v for v in value
            )
        else:
            kwargs[f.name] = value
    return fn(type(node)(**kwargs))
