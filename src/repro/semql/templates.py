"""Query templates: SemQL trees with anonymized leaves (Phase 1, Figure 2).

The seeding phase turns each seed query's SemQL tree into a *template* by
replacing its leaf nodes — tables (T), columns (C) and values (V) — with
positional placeholders.  Leaves that occur multiple times receive the same
position, which is exactly how Algorithm 1's hash maps guarantee consistency
(re-using table T(0) everywhere it appeared in the seed).

The template's *signature* is a canonical string of its anonymized structure,
used to de-duplicate templates extracted from different seeds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.semql import nodes as sq


@dataclass(frozen=True)
class Template:
    """An anonymized SemQL tree plus bookkeeping for instantiation."""

    tree: sq.Z
    n_tables: int
    n_columns: int
    n_values: int
    signature: str
    source_sql: str | None = None

    def __post_init__(self) -> None:
        if not sq.is_template(self.tree) and self.n_tables > 0:
            raise ValueError("template tree has no slots")


def extract_template(z: sq.Z, source_sql: str | None = None) -> Template:
    """Anonymize the leaves of a concrete SemQL tree into a template.

    Distinct tables/columns/values each get a fresh position in first-
    occurrence (pre-order) order; repeated leaves share their position.
    """
    table_positions: dict[str, int] = {}
    column_positions: dict[tuple[int, str], int] = {}
    value_positions: dict[tuple[type, object], int] = {}

    def table_slot(leaf: sq.TableLeaf) -> sq.TableSlot:
        key = leaf.name.lower()
        if key not in table_positions:
            table_positions[key] = len(table_positions)
        return sq.TableSlot(position=table_positions[key])

    def anonymize(node: sq.SemNode) -> sq.SemNode:
        if isinstance(node, sq.TableLeaf):
            return table_slot(node)
        if isinstance(node, sq.ColumnLeaf):
            owner = node.table
            if isinstance(owner, sq.TableLeaf):
                owner_slot = table_slot(owner)
            else:
                owner_slot = owner
            key = (owner_slot.position, node.name.lower())
            if key not in column_positions:
                column_positions[key] = len(column_positions)
            return sq.ColumnSlot(table=owner_slot, position=column_positions[key])
        if isinstance(node, sq.ValueLeaf):
            key = (type(node.value), node.value)
            if key not in value_positions:
                value_positions[key] = len(value_positions)
            return sq.ValueSlot(position=value_positions[key])
        return node

    tree = sq.map_tree(z, anonymize)
    assert isinstance(tree, sq.Z)
    return Template(
        tree=tree,
        n_tables=len(table_positions),
        n_columns=len(column_positions),
        n_values=len(value_positions),
        signature=signature_of(tree),
        source_sql=source_sql,
    )


def signature_of(node: sq.SemNode) -> str:
    """Canonical structural string of a (template) tree."""
    if isinstance(node, sq.Z):
        parts = [signature_of(node.left)]
        if node.set_op:
            parts.append(node.set_op)
            parts.append(signature_of(node.right))
        return f"Z({' '.join(parts)})"
    if isinstance(node, sq.R):
        parts = [signature_of(node.select)]
        if node.filter is not None:
            parts.append(signature_of(node.filter))
        if node.order is not None:
            parts.append(signature_of(node.order))
        return f"R({' '.join(parts)})"
    if isinstance(node, sq.SemSelect):
        attrs = " ".join(signature_of(a) for a in node.attributes)
        text = f"Select[{attrs}]"
        if node.distinct:
            text = f"Distinct{text}"
        if node.group is not None:
            group = " ".join(signature_of(c) for c in node.group)
            text = f"{text}Group[{group}]"
        return text
    if isinstance(node, sq.A):
        return f"A({node.agg},{signature_of(node.column)})"
    if isinstance(node, sq.MathExpr):
        return f"Math({node.op},{signature_of(node.left)},{signature_of(node.right)})"
    if isinstance(node, sq.FilterNode):
        return f"{node.op}({signature_of(node.left)},{signature_of(node.right)})"
    if isinstance(node, sq.Condition):
        parts = [node.op, signature_of(node.attribute)]
        if node.value is not None:
            parts.append(signature_of(node.value))
        if node.value2 is not None:
            parts.append(signature_of(node.value2))
        if node.subquery is not None:
            parts.append(signature_of(node.subquery))
        return f"Cond({','.join(parts)})"
    if isinstance(node, sq.Order):
        limit = f",limit={node.limit}" if node.limit is not None else ""
        return f"Order({node.direction},{signature_of(node.attribute)}{limit})"
    if isinstance(node, sq.TableSlot):
        return f"T({node.position})"
    if isinstance(node, sq.ColumnSlot):
        return f"C({node.position})@{signature_of(node.table)}"
    if isinstance(node, sq.ValueSlot):
        return f"V({node.position})"
    if isinstance(node, sq.TableLeaf):
        return f"T'{node.name}'"
    if isinstance(node, sq.ColumnLeaf):
        return f"C'{node.name}'@{signature_of(node.table)}"
    if isinstance(node, sq.ValueLeaf):
        return f"V'{node.value!r}'"
    if isinstance(node, sq.StarLeaf):
        return "*"
    raise TypeError(f"unknown SemQL node {type(node).__name__}")


def dedupe_templates(templates: list[Template]) -> list[Template]:
    """Drop templates with identical signatures, keeping first occurrences."""
    seen: set[str] = set()
    unique: list[Template] = []
    for template in templates:
        if template.signature in seen:
            continue
        seen.add(template.signature)
        unique.append(template)
    return unique
