"""Lowering SemQL trees back to executable SQL.

This is the inverse of :mod:`repro.semql.from_sql` and the step that gives
SemQL its power: the FROM clause — including intermediate bridge tables —
is *reconstructed from the schema's foreign-key graph*, so a SemQL tree only
needs to mention the tables its columns touch.  ValueNet inherits exactly
this mechanism.
"""

from __future__ import annotations

from repro.errors import SemQLError
from repro.schema.model import Schema
from repro.semql import nodes as sq
from repro.sql import ast
from repro.sql.printer import to_sql as print_sql


def semql_to_sql(z: sq.Z, schema: Schema) -> str:
    """Render a SemQL tree as a SQL string."""
    return print_sql(semql_to_ast(z, schema))


def semql_to_ast(z: sq.Z, schema: Schema) -> ast.Query:
    """Lower a SemQL tree to a SQL AST."""
    if sq.is_template(z):
        raise SemQLError("cannot lower a template — instantiate its slots first")
    left = _r_to_select(z.left, schema)
    if z.set_op is None:
        return ast.Query(select=left)
    if z.right is None:
        raise SemQLError("set operation missing right arm")
    right = _r_to_select(z.right, schema)
    return ast.Query(
        select=left, set_op=z.set_op, right=ast.Query(select=right)
    )


def _r_to_select(r: sq.R, schema: Schema) -> ast.Select:
    tables = _tables_needed(r)
    plan = _join_plan(tables, schema)
    aliases = plan.aliases

    items = tuple(
        ast.SelectItem(expr=_attribute_to_expr(a, aliases)) for a in r.select.attributes
    )

    where_parts: list[ast.Expr] = []
    having_parts: list[ast.Expr] = []
    if r.filter is not None:
        _split_filter(r.filter, aliases, schema, where_parts, having_parts)

    group_by: tuple[ast.Expr, ...] = ()
    if r.select.group is not None:
        group_by = tuple(
            _column_to_expr(c, aliases) for c in r.select.group
        )
    else:
        aggregated = [a for a in r.select.attributes if a.is_aggregated]
        plain = [a for a in r.select.attributes if not a.is_aggregated]
        if aggregated and plain:
            group_by = tuple(_attribute_to_expr(a, aliases) for a in plain)
        elif having_parts and not aggregated:
            raise SemQLError("HAVING conditions require an aggregate context")

    order_by: tuple[ast.OrderItem, ...] = ()
    limit = None
    if r.order is not None:
        order_by = (
            ast.OrderItem(
                expr=_attribute_to_expr(r.order.attribute, aliases),
                desc=r.order.direction == "desc",
            ),
        )
        limit = r.order.limit

    return ast.Select(
        items=items,
        from_tables=plan.from_tables,
        joins=plan.joins,
        where=_conjoin_all(where_parts),
        group_by=group_by,
        having=_conjoin_all(having_parts),
        order_by=order_by,
        limit=limit,
        distinct=r.select.distinct,
    )


# ---------------------------------------------------------------------------
# FROM-clause reconstruction
# ---------------------------------------------------------------------------


class _JoinPlan:
    def __init__(
        self,
        from_tables: tuple[ast.TableRef, ...],
        joins: tuple[ast.Join, ...],
        aliases: dict[str, str],
    ) -> None:
        self.from_tables = from_tables
        self.joins = joins
        self.aliases = aliases


def _tables_needed(r: sq.R) -> list[str]:
    """Concrete tables referenced by this R (not descending into subqueries)."""
    seen: dict[str, None] = {}

    def visit(node: sq.SemNode) -> None:
        if isinstance(node, sq.Condition) and node.subquery is not None:
            # Subqueries build their own FROM clauses.
            visit(node.attribute)
            return
        if isinstance(node, sq.TableLeaf):
            seen.setdefault(node.name, None)
        for child in node.children():
            visit(child)

    if isinstance(r.from_table, sq.TableLeaf):
        seen.setdefault(r.from_table.name, None)
    visit(r.select)
    if r.filter is not None:
        visit(r.filter)
    if r.order is not None:
        visit(r.order)
    if not seen:
        raise SemQLError("SemQL tree references no tables")
    return list(seen)


def _join_plan(tables: list[str], schema: Schema) -> _JoinPlan:
    """Connect the required tables along FK edges, adding bridge tables."""
    ordered: list[str] = [tables[0]]
    for goal in tables[1:]:
        if goal in ordered:
            continue
        path = None
        for start in ordered:
            path = schema.join_path(start, goal)
            if path is not None:
                break
        if path is None:
            raise SemQLError(
                f"tables {ordered[0]!r} and {goal!r} are not FK-connected"
            )
        for table in path:
            if table not in ordered:
                ordered.append(table)

    aliases: dict[str, str] = {}
    if len(ordered) == 1:
        aliases[ordered[0]] = ordered[0]
        return _JoinPlan(
            from_tables=(ast.TableRef(name=ordered[0]),), joins=(), aliases=aliases
        )

    for i, table in enumerate(ordered):
        aliases[table] = f"T{i + 1}"

    from_tables = (ast.TableRef(name=ordered[0], alias=aliases[ordered[0]]),)
    joins = []
    joined = [ordered[0]]
    for table in ordered[1:]:
        fk = None
        partner = None
        for candidate in joined:
            fk = schema.join_condition(candidate, table)
            if fk is not None:
                partner = candidate
                break
        if fk is None:
            raise SemQLError(f"no FK edge to join {table!r}")
        condition = ast.Comparison(
            op="=",
            left=ast.ColumnRef(table=aliases[fk.table], column=fk.column),
            right=ast.ColumnRef(table=aliases[fk.ref_table], column=fk.ref_column),
        )
        joins.append(
            ast.Join(table=ast.TableRef(name=table, alias=aliases[table]), condition=condition)
        )
        joined.append(table)
    return _JoinPlan(
        from_tables=from_tables, joins=tuple(joins), aliases=aliases
    )


# ---------------------------------------------------------------------------
# Expression lowering
# ---------------------------------------------------------------------------


def _attribute_to_expr(a: sq.A, aliases: dict[str, str]) -> ast.Expr:
    column = _column_to_expr(a.column, aliases)
    if a.agg == "none":
        return column
    return ast.FuncCall(name=a.agg, args=(column,), distinct=a.distinct)


def _column_to_expr(column: sq.SemNode, aliases: dict[str, str]) -> ast.Expr:
    if isinstance(column, sq.ColumnLeaf):
        table = column.table
        if not isinstance(table, sq.TableLeaf):
            raise SemQLError("template slot leaked into lowering")
        # Single-table queries keep the bare column name; multi-table queries
        # always qualify with the T1..Tn alias — the paper's query style.
        if len(aliases) == 1:
            return ast.ColumnRef(table=None, column=column.name)
        return ast.ColumnRef(table=aliases[table.name], column=column.name)
    if isinstance(column, sq.StarLeaf):
        return ast.Star()
    if isinstance(column, sq.MathExpr):
        return ast.BinaryOp(
            op=column.op,
            left=_column_to_expr(column.left, aliases),
            right=_column_to_expr(column.right, aliases),
        )
    raise SemQLError(f"cannot lower column node {type(column).__name__}")


def _split_filter(
    node,
    aliases: dict[str, str],
    schema: Schema,
    where_parts: list[ast.Expr],
    having_parts: list[ast.Expr],
) -> None:
    """Partition the filter tree into WHERE and HAVING conjuncts."""
    if isinstance(node, sq.FilterNode) and node.op == "and":
        _split_filter(node.left, aliases, schema, where_parts, having_parts)
        _split_filter(node.right, aliases, schema, where_parts, having_parts)
        return
    expr, aggregated = _filter_to_expr(node, aliases, schema)
    if aggregated:
        having_parts.append(expr)
    else:
        where_parts.append(expr)


def _filter_to_expr(node, aliases: dict[str, str], schema: Schema):
    """Lower a filter subtree; returns (expr, uses_aggregates)."""
    if isinstance(node, sq.FilterNode):
        left, agg_l = _filter_to_expr(node.left, aliases, schema)
        right, agg_r = _filter_to_expr(node.right, aliases, schema)
        if agg_l != agg_r:
            raise SemQLError("mixed WHERE/HAVING inside an OR is unsupported")
        return ast.BoolOp(op=node.op, operands=(left, right)), agg_l

    if not isinstance(node, sq.Condition):
        raise SemQLError(f"unexpected filter node {type(node).__name__}")

    attribute = node.attribute
    left = _attribute_to_expr(attribute, aliases)
    aggregated = attribute.is_aggregated

    if node.subquery is not None:
        sub_ast = ast.Query(select=_r_to_select(node.subquery, schema))
        if node.op in ("in", "not_in"):
            expr: ast.Expr = ast.InSubquery(
                expr=left, query=sub_ast, negated=node.op == "not_in"
            )
        else:
            expr = ast.Comparison(op=node.op, left=left, right=ast.ScalarSubquery(sub_ast))
        return expr, aggregated

    if node.op == "between":
        return (
            ast.Between(
                expr=left,
                low=_value_to_expr(node.value),
                high=_value_to_expr(node.value2),
            ),
            aggregated,
        )
    if node.op in ("like", "not_like"):
        return (
            ast.Comparison(
                op="like" if node.op == "like" else "not like",
                left=left,
                right=_value_to_expr(node.value),
            ),
            aggregated,
        )
    if node.op in ("in", "not_in"):
        raise SemQLError("IN conditions need a subquery")
    return (
        ast.Comparison(op=node.op, left=left, right=_value_to_expr(node.value)),
        aggregated,
    )


def _value_to_expr(value) -> ast.Expr:
    if not isinstance(value, sq.ValueLeaf):
        raise SemQLError("filter value is not concrete")
    return ast.Literal(value.value)


def _conjoin_all(parts: list[ast.Expr]) -> ast.Expr | None:
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return ast.BoolOp(op="and", operands=tuple(parts))
