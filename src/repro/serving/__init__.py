"""Async NL-to-SQL inference service over trained benchmark systems.

The subsystem turns the offline experiment artifacts into an online
service: trained per-domain systems are warm-started from the runtime's
artifact cache (:mod:`repro.serving.loader`), concurrent questions flow
through bounded per-domain queues into a micro-batching scheduler
(:mod:`repro.serving.scheduler`), decoded answers land in a normalized
LRU result cache (:mod:`repro.serving.cache`), and every stage is
observable (:mod:`repro.serving.metrics`).  ``serve-bench``
(:mod:`repro.serving.loadgen`) replays dev-split questions to quantify
what batching and caching buy.
"""

from repro.serving.cache import CachedResult, ResultCache
from repro.serving.fallback import TemplateFallback
from repro.serving.loader import ServingBundle, load_backends
from repro.serving.loadgen import (
    FleetProfile,
    LoadProfile,
    build_stream,
    evaluate_gates,
    render_report,
    replay,
    run_serve_bench,
    write_report,
)
from repro.serving.metrics import LatencyHistogram, ServerMetrics, ServerStats
from repro.serving.request import STATUSES, ServeError, ServeResult
from repro.serving.scheduler import BatchPolicy, collect_batch
from repro.serving.server import DomainBackend, InferenceServer, ServerConfig

__all__ = [
    "BatchPolicy",
    "CachedResult",
    "DomainBackend",
    "FleetProfile",
    "InferenceServer",
    "LatencyHistogram",
    "LoadProfile",
    "ResultCache",
    "STATUSES",
    "ServeError",
    "ServeResult",
    "ServerConfig",
    "ServerMetrics",
    "ServerStats",
    "ServingBundle",
    "TemplateFallback",
    "build_stream",
    "collect_batch",
    "evaluate_gates",
    "load_backends",
    "render_report",
    "replay",
    "run_serve_bench",
    "write_report",
]
