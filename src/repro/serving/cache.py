"""Bounded LRU result cache keyed by (domain, normalized question).

The key goes through :func:`repro.textutil.normalize_question` — the same
canonicalization schema linking is built on — so case/whitespace variants
of one question share a single entry.  Only primary (non-degraded) results
are cached; degraded answers must not outlive the incident that caused
them.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.textutil import normalize_question


@dataclass(frozen=True)
class CachedResult:
    """The cached payload of one served question."""

    sql: str | None
    rows: tuple | None = None


class ResultCache:
    """Bounded LRU with hit/miss/eviction accounting.

    ``capacity <= 0`` disables the cache entirely (every lookup is a
    silent miss and stores are dropped) — the unbatched benchmark arm and
    byte-identity tests run in that mode.
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = int(capacity)
        self._entries: OrderedDict[tuple[str, str], CachedResult] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def key(domain: str, question: str) -> tuple[str, str]:
        return (domain, normalize_question(question))

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, domain: str, question: str) -> tuple[bool, CachedResult | None]:
        """``(hit, entry)`` for a question; a hit refreshes recency."""
        if not self.enabled:
            return False, None
        key = self.key(domain, question)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return False, None
        self._entries.move_to_end(key)
        self.hits += 1
        return True, entry

    def put(self, domain: str, question: str, entry: CachedResult) -> None:
        if not self.enabled:
            return
        key = self.key(domain, question)
        self._entries[key] = entry
        self._entries.move_to_end(key)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> dict:
        lookups = self.hits + self.misses
        return {
            "capacity": self.capacity,
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
        }
