"""Template-only degraded-mode system.

When a primary system raises at decode time, the server answers from this
minimal, dependency-free system instead of failing the request.  It knows
nothing a schema does not say: it grounds the question against the
precomputed schema phrase index (:func:`repro.nl2sql.features.
schema_phrases`) and emits one of two always-executable templates —
``SELECT count(*) FROM t`` for counting questions, ``SELECT c FROM t``
otherwise.  Deliberately unsophisticated: its job is to keep the service
answering with *something valid* while the primary is failing, and to make
degradation observable (every fallback answer increments ``degraded``).
"""

from __future__ import annotations

from repro.nl2sql.features import normalize_link_text, schema_phrases

_COUNT_HINTS = ("how many", "number of", "count")


class TemplateFallback:
    """Always-answers system over registered schemas (no training needed)."""

    name = "template-fallback"

    def __init__(self) -> None:
        self._schemas: dict[str, object] = {}

    def register_database(self, db_id: str, database, enhanced=None) -> None:
        """Mirror of ``NLToSQLSystem.register_database`` (enhanced unused)."""
        self._schemas[db_id] = database.schema

    def predict(self, question: str, db_id: str) -> str:
        schema = self._schemas[db_id]
        normalized = normalize_link_text(question)

        best: tuple[int, str, str | None] | None = None  # (position, table, column)
        for table_key, t_phrase, t_plural, columns in schema_phrases(schema).tables:
            for phrase in (t_phrase, t_plural):
                position = normalized.find(f" {phrase} ") if phrase else -1
                if position >= 0 and (best is None or position < best[0]):
                    best = (position, table_key, None)
            for column_key, c_phrase, c_plural in columns:
                for phrase in (c_phrase, c_plural):
                    position = normalized.find(f" {phrase} ") if phrase else -1
                    if position >= 0 and (best is None or position < best[0]):
                        best = (position, table_key, column_key)

        if best is None:
            table_key, column_key = schema.tables[0].name.lower(), None
        else:
            _, table_key, column_key = best

        table = schema.table(table_key)
        if any(hint in normalized for hint in _COUNT_HINTS):
            return f"SELECT count(*) FROM {table.name}"
        if column_key is None:
            column_key = table.primary_key or table.columns[0].name
        column = schema.column(table.name, column_key)
        return f"SELECT {column.name} FROM {table.name}"

    def predict_batch(self, questions: list[str], db_id: str) -> list[str]:
        return [self.predict(question, db_id) for question in questions]
