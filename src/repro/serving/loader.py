"""Warm-start loading of trained systems from the artifact cache.

Serving never trains: it asks the suite's task graph for the already
trained per-domain systems (``train:<system>:<domain>:<regime>``) and the
domain artifacts, which the runtime satisfies from its content-addressed
disk cache when one is configured.  :func:`load_backends` also *probes*
the runtime first, so callers can report whether the start was warm
(every artifact cached or memoized) or had to compute.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import registry
from repro.experiments.tasks import domain_task, train_task
from repro.serving.fallback import TemplateFallback
from repro.serving.server import DomainBackend


@dataclass(frozen=True)
class ServingBundle:
    """Everything :func:`load_backends` materialized for a server."""

    #: domain name -> ready backend
    backends: dict
    system_name: str
    regime: str
    #: True when every required artifact came from the cache (no training).
    warm: bool
    #: Named adapter manifest specs behind the served domains
    #: (:func:`repro.adapters.specs_for`) — the fleet ships these with every
    #: replica spec so a reload factory can re-register the domains before
    #: rebuilding backends in a context that never imported them.
    adapter_specs: tuple[dict, ...] = ()

    def fleet_spec(self):
        """The pure-data :class:`~repro.fleet.replica.FleetSpec` equivalent."""
        from repro.fleet.replica import FleetSpec

        return FleetSpec(
            system=self.system_name,
            regime=self.regime,
            domains=tuple(self.backends),
            adapter_specs=self.adapter_specs,
        )


def load_backends(
    suite,
    domains: tuple[str, ...] | None = None,
    system_name: str = "valuenet",
    regime: str = "both",
    with_fallback: bool = True,
    exec_engine: str = "native",
) -> ServingBundle:
    """Load one trained backend per domain out of the suite's runtime.

    ``domains`` defaults to the suite's own domain set (``config.domains``,
    resolved through the adapter registry).  ``exec_engine`` selects the
    SQL engine behind the server's optional execute stage (``native`` or
    ``vector`` — byte-identical results, different speed)."""
    from repro.adapters import specs_for

    if domains is None:
        domains = suite.domain_names()
    names = registry.serving_tasks(system_name, domains, regime)
    statuses = suite.runtime.probe(suite.graph, names)
    warm = all(status != "compute" for status in statuses.values())
    suite.ensure(names)

    backends: dict[str, DomainBackend] = {}
    for name in domains:
        domain = suite.artifact(domain_task(name))
        domain.database.set_engine(exec_engine)
        system = suite.artifact(train_task(system_name, name, regime))
        fallback = None
        if with_fallback:
            fallback = TemplateFallback()
            fallback.register_database(name, domain.database, domain.enhanced)
        backends[name] = DomainBackend(
            name=name, system=system, database=domain.database, fallback=fallback
        )
    return ServingBundle(
        backends=backends, system_name=system_name, regime=regime, warm=warm,
        adapter_specs=specs_for(domains),
    )
