"""Load generator: replay dev-split questions against an InferenceServer.

``serve-bench`` runs the same request stream through two arms:

* **unbatched** — ``max_batch=1`` and the result cache disabled: a naive
  one-question-at-a-time service, the baseline.
* **batched** — the full serving stack: micro-batch coalescing plus the
  normalized-question result cache.

Both arms start with cold link memos (cleared between arms) and replay an
identical stream — each dev question repeated ``repeat`` times, shuffled
with a fixed seed — so the speedup isolates exactly what the serving layer
adds.  The report spells out per-arm cache hits and coalesced counts, so
the source of the speedup is visible rather than implied.
"""

from __future__ import annotations

import asyncio
import json
import math
from dataclasses import asdict, dataclass, replace
from pathlib import Path

from repro import obs
from repro.obs import get_tracer
from repro.resilience.clock import SYSTEM_CLOCK
from repro.serving.server import InferenceServer, ServerConfig


@dataclass(frozen=True)
class LoadProfile:
    """Shape of one replayed load."""

    concurrency: int = 16
    #: Times each dev question appears in the stream.
    repeat: int = 4
    #: Open-loop pacing in requests/second (None = closed loop).
    qps: float | None = None
    seed: int = 2023
    #: Cap on total requests after repeat+shuffle (None = no cap).
    limit: int | None = None


def build_stream(
    questions_by_domain: dict[str, list[str]], profile: LoadProfile
) -> list[tuple[str, str]]:
    """The deterministic (domain, question) request stream for a profile."""
    import random

    stream = [
        (domain, question)
        for domain in sorted(questions_by_domain)
        for question in questions_by_domain[domain]
        for _ in range(profile.repeat)
    ]
    random.Random(profile.seed).shuffle(stream)
    if profile.limit is not None:
        stream = stream[: profile.limit]
    return stream


async def replay(
    server: InferenceServer, stream: list[tuple[str, str]], profile: LoadProfile
) -> list:
    """Drive the stream through a started server; returns all ServeResults."""
    results = []
    if profile.qps:
        interval = 1.0 / profile.qps

        async def paced(domain: str, question: str, delay: float):
            await asyncio.sleep(delay)
            results.append(await server.submit(question, domain))

        await asyncio.gather(
            *(
                paced(domain, question, index * interval)
                for index, (domain, question) in enumerate(stream)
            )
        )
    else:
        iterator = iter(stream)

        async def worker() -> None:
            for domain, question in iterator:
                results.append(await server.submit(question, domain))

        await asyncio.gather(*(worker() for _ in range(profile.concurrency)))
    return results


def _percentiles(samples_ms: list[float]) -> dict:
    """Exact nearest-rank percentiles (no histogram binning error)."""
    if not samples_ms:
        return {"mean_ms": 0.0, "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0}
    ordered = sorted(samples_ms)

    def at(q: float) -> float:
        return ordered[max(1, math.ceil(q * len(ordered))) - 1]

    return {
        "mean_ms": sum(ordered) / len(ordered),
        "p50_ms": at(0.50),
        "p95_ms": at(0.95),
        "p99_ms": at(0.99),
        "max_ms": ordered[-1],
    }


def _reset_link_memos(backends: dict) -> None:
    """Cold-start every arm identically (the link memo otherwise carries
    warmth from the previous arm into the next one)."""
    for backend in backends.values():
        cache = getattr(backend.system, "_link_cache", None)
        if cache is not None:
            cache.clear()


async def _run_arm(
    backends: dict,
    stream: list[tuple[str, str]],
    profile: LoadProfile,
    config: ServerConfig,
    label: str = "arm",
    clock=SYSTEM_CLOCK,
) -> dict:
    _reset_link_memos(backends)
    server = InferenceServer(backends, config, clock=clock)
    with get_tracer().span(f"serve-bench.{label}", requests=len(stream)):
        async with server:
            started = clock.now()
            results = await replay(server, stream, profile)
            wall_s = clock.now() - started
    stats = server.stats()

    statuses: dict[str, int] = {}
    for result in results:
        statuses[result.status] = statuses.get(result.status, 0) + 1
    answered = [r for r in results if r.ok]
    totals_ms = [r.timings_ms["total"] for r in answered if "total" in r.timings_ms]
    return {
        "requests": len(results),
        "answered": len(answered),
        "statuses": statuses,
        "wall_s": wall_s,
        "throughput_qps": len(answered) / wall_s if wall_s > 0 else 0.0,
        "latency": _percentiles(totals_ms),
        "counters": stats.counters,
        "cache": stats.cache,
        "stage_latency_ms": stats.latency_ms,
        "breakers": server.breaker_states(),
        # The arm's full unified-registry snapshot (serving.* instruments).
        "registry": server.metrics.registry.snapshot(),
    }


def run_serve_bench(
    backends: dict,
    questions_by_domain: dict[str, list[str]],
    profile: LoadProfile | None = None,
    config: ServerConfig | None = None,
) -> dict:
    """Run both benchmark arms and return the comparison report."""
    profile = profile or LoadProfile()
    config = config or ServerConfig()
    stream = build_stream(questions_by_domain, profile)
    unique = len({(domain, question) for domain, question in stream})

    unbatched_config = replace(config, max_batch=1, cache_capacity=0)
    unbatched = asyncio.run(
        _run_arm(backends, stream, profile, unbatched_config, label="unbatched")
    )
    batched = asyncio.run(
        _run_arm(backends, stream, profile, config, label="batched")
    )

    unbatched_qps = unbatched["throughput_qps"]
    speedup = batched["throughput_qps"] / unbatched_qps if unbatched_qps else 0.0
    return {
        "schema_version": 1,
        "benchmark": "serving",
        # Trace artifact of the enclosing ``trace`` run (None otherwise).
        "trace_path": obs.current_trace_path(),
        "profile": asdict(profile),
        "config": asdict(config),
        "stream": {
            "requests": len(stream),
            "unique_questions": unique,
            "domains": sorted(questions_by_domain),
        },
        "arms": {"unbatched": unbatched, "batched": batched},
        "speedup": speedup,
    }


def write_report(report: dict, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def render_report(report: dict) -> str:
    """A short human-readable summary of one serve-bench report."""
    lines = [
        "serve-bench: {requests} requests over {domains} "
        "({unique} unique questions)".format(
            requests=report["stream"]["requests"],
            domains=", ".join(report["stream"]["domains"]),
            unique=report["stream"]["unique_questions"],
        )
    ]
    for arm in ("unbatched", "batched"):
        data = report["arms"][arm]
        latency = data["latency"]
        lines.append(
            f"  {arm:>9}: {data['throughput_qps']:8.1f} req/s   "
            f"p50 {latency['p50_ms']:7.2f} ms   "
            f"p95 {latency['p95_ms']:7.2f} ms   "
            f"p99 {latency['p99_ms']:7.2f} ms   "
            f"cache_hits {data['counters']['cache_hits']}   "
            f"coalesced {data['counters']['coalesced']}"
        )
    lines.append(f"  speedup (batched / unbatched): {report['speedup']:.2f}x")
    return "\n".join(lines)
