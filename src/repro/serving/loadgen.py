"""Load generator: replay dev-split questions against a serving target.

``serve-bench`` runs the same request stream through comparison arms:

* **unbatched** — ``max_batch=1`` and the result cache disabled: a naive
  one-question-at-a-time service, the baseline.
* **batched** — the full single-server stack: micro-batch coalescing plus
  the normalized-question result cache.
* **fleet** (``--replicas N``) — the same stream through a
  :class:`~repro.fleet.router.FleetRouter` over N replicas with the
  fleet-shared single-flight cache.
* **soak** (``--qps``) — an open-loop sustained arm against the fleet:
  multi-tenant pacing at a fixed offered rate, optionally under per-tenant
  token-bucket quotas, gated on p99 and per-tenant fairness.

Every arm starts with cold link memos and replays an identical stream —
each dev question repeated ``repeat`` times, shuffled with a fixed seed —
so arm-to-arm deltas isolate exactly what each serving layer adds.  Each
arm records its *achieved* QPS (completions over wall time, distinct from
the offered rate) and a queue-depth time series sampled while it ran.  The
fleet arm is additionally checked for byte-identical answers against the
batched arm (``fleet_identity``): same stream, same seed, same SQL.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
from dataclasses import asdict, dataclass, replace
from pathlib import Path

from repro import obs
from repro.obs import get_tracer
from repro.resilience.clock import SYSTEM_CLOCK
from repro.serving.metrics import STAGES, LatencyHistogram
from repro.serving.server import InferenceServer, ServerConfig


@dataclass(frozen=True)
class LoadProfile:
    """Shape of one replayed load."""

    concurrency: int = 16
    #: Times each dev question appears in the stream.
    repeat: int = 4
    #: Open-loop pacing in requests/second (None = closed loop).
    qps: float | None = None
    seed: int = 2023
    #: Cap on total requests after repeat+shuffle (None = no cap).
    limit: int | None = None


@dataclass(frozen=True)
class FleetProfile:
    """Shape of the fleet and soak arms (``serve-bench --replicas``)."""

    #: Replica slots behind the router (the fleet arm needs >= 2).
    replicas: int = 2
    #: Replica decode isolation: ``"process"`` forks one decode worker per
    #: replica (parallel across cores; falls back to threads without
    #: ``fork``), ``"thread"`` shares the interpreter.
    isolation: str = "process"
    #: Virtual nodes per slot on each domain's hash ring.
    vnodes: int = 32
    #: Tenants the soak arm spreads requests over (round-robin).
    tenants: int = 4
    #: Offered rate of the open-loop soak arm (None = no soak arm).
    soak_qps: float | None = None
    #: Cap on soak-arm requests (None = the full stream).
    soak_requests: int | None = None
    #: Per-tenant token-bucket refill rate (None = no quotas in the soak).
    quota_rate: float | None = None
    #: Per-tenant token-bucket burst size (None = same as the rate).
    quota_burst: float | None = None


def build_stream(
    questions_by_domain: dict[str, list[str]], profile: LoadProfile
) -> list[tuple[str, str]]:
    """The deterministic (domain, question) request stream for a profile."""
    import random

    stream = [
        (domain, question)
        for domain in sorted(questions_by_domain)
        for question in questions_by_domain[domain]
        for _ in range(profile.repeat)
    ]
    random.Random(profile.seed).shuffle(stream)
    if profile.limit is not None:
        stream = stream[: profile.limit]
    return stream


async def replay(
    target,
    stream: list[tuple[str, str]],
    profile: LoadProfile,
    *,
    qps: float | None = None,
    tenants: int = 1,
) -> list:
    """Drive the stream through a started target; returns all ServeResults.

    ``target`` is anything with ``async submit(question, domain)`` — an
    :class:`InferenceServer` or a :class:`~repro.fleet.router.FleetRouter`.
    With ``tenants > 1`` requests round-robin over tenants ``t0..tN-1``
    (fleet targets only: the single server has no tenant concept).
    """
    results = []
    qps = qps if qps is not None else profile.qps

    def submit(index: int, domain: str, question: str):
        if tenants > 1:
            return target.submit(question, domain, tenant=f"t{index % tenants}")
        return target.submit(question, domain)

    if qps:
        interval = 1.0 / qps

        async def paced(index: int, domain: str, question: str):
            await asyncio.sleep(index * interval)
            results.append(await submit(index, domain, question))

        await asyncio.gather(
            *(
                paced(index, domain, question)
                for index, (domain, question) in enumerate(stream)
            )
        )
    else:
        iterator = iter(enumerate(stream))

        async def worker() -> None:
            for index, (domain, question) in iterator:
                results.append(await submit(index, domain, question))

        await asyncio.gather(*(worker() for _ in range(profile.concurrency)))
    return results


def _percentiles(samples_ms: list[float]) -> dict:
    """Exact nearest-rank percentiles (no histogram binning error)."""
    if not samples_ms:
        return {"mean_ms": 0.0, "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0}
    ordered = sorted(samples_ms)

    def at(q: float) -> float:
        return ordered[max(1, math.ceil(q * len(ordered))) - 1]

    return {
        "mean_ms": sum(ordered) / len(ordered),
        "p50_ms": at(0.50),
        "p95_ms": at(0.95),
        "p99_ms": at(0.99),
        "max_ms": ordered[-1],
    }


def _reset_link_memos(backends: dict) -> None:
    """Cold-start every arm identically (the link memo otherwise carries
    warmth from the previous arm into the next one)."""
    for backend in backends.values():
        cache = getattr(backend.system, "_link_cache", None)
        if cache is not None:
            cache.clear()


async def _sample_queue_depth(
    depth_fn,
    stop: asyncio.Event,
    interval_s: float = 0.02,
    max_samples: int = 2000,
) -> dict:
    """Sample ``depth_fn()`` until ``stop`` is set; bounded memory.

    When the series outgrows ``max_samples`` it is decimated (every other
    sample dropped) and the interval doubled, so long soaks keep a coarse
    full-run series instead of truncating the tail.
    """
    samples: list[int] = []
    interval = interval_s
    while not stop.is_set():
        samples.append(depth_fn())
        if len(samples) > max_samples:
            del samples[1::2]
            interval *= 2.0
        try:
            await asyncio.wait_for(stop.wait(), interval)
        except asyncio.TimeoutError:
            pass
    return {"interval_ms": interval * 1000.0, "samples": samples}


def _rejection_kinds(results: list) -> dict:
    """Split rejections into quota (intended) vs admission (overload)."""
    kinds = {"quota": 0, "admission": 0}
    for result in results:
        if result.status == "rejected":
            kind = result.error.kind if result.error else "admission"
            kinds["quota" if kind == "quota" else "admission"] += 1
    return kinds


def _summarize(
    results: list, wall_s: float, offered_qps: float | None = None
) -> dict:
    """The per-arm accounting every arm shares."""
    statuses: dict[str, int] = {}
    for result in results:
        statuses[result.status] = statuses.get(result.status, 0) + 1
    answered = [r for r in results if r.ok]
    totals_ms = [r.timings_ms["total"] for r in answered if "total" in r.timings_ms]
    queues_ms = [r.timings_ms["queue"] for r in answered if "queue" in r.timings_ms]
    answers: dict[str, str] = {}
    for result in answered:
        if result.sql is not None:
            answers.setdefault(f"{result.domain}: {result.question}", result.sql)
    return {
        "requests": len(results),
        "answered": len(answered),
        "statuses": statuses,
        "rejections": _rejection_kinds(results),
        "wall_s": wall_s,
        #: Answers per second — the headline comparison number.
        "throughput_qps": len(answered) / wall_s if wall_s > 0 else 0.0,
        #: Completions per second, every outcome counted (what the arm
        #: actually sustained, vs the offered open-loop rate).
        "achieved_qps": len(results) / wall_s if wall_s > 0 else 0.0,
        "offered_qps": offered_qps,
        "latency": _percentiles(totals_ms),
        #: Exact queue-stage percentiles (admission -> dequeue wait).
        "queue_latency": _percentiles(queues_ms),
        # (domain, question) -> SQL; popped before the report is written,
        # consumed by the fleet identity check.
        "answers": answers,
    }


def _tenant_stats(results: list) -> dict:
    """Per-tenant accounting + fairness spreads for a multi-tenant arm."""
    by_tenant: dict[str, dict] = {}
    for result in results:
        tenant = result.tenant or "default"
        bucket = by_tenant.setdefault(
            tenant, {"requests": 0, "answered": 0, "rejected": 0, "samples": []}
        )
        bucket["requests"] += 1
        if result.ok:
            bucket["answered"] += 1
            if "total" in result.timings_ms:
                bucket["samples"].append(result.timings_ms["total"])
        elif result.status == "rejected":
            bucket["rejected"] += 1
    per_tenant = {
        tenant: {
            "requests": bucket["requests"],
            "answered": bucket["answered"],
            "rejected": bucket["rejected"],
            "latency": _percentiles(bucket["samples"]),
        }
        for tenant, bucket in sorted(by_tenant.items())
    }
    p95s = [
        entry["latency"]["p95_ms"]
        for entry in per_tenant.values()
        if entry["answered"]
    ]
    answered = [entry["answered"] for entry in per_tenant.values()]
    fairness = {
        #: Worst/best tenant p95 ratio (1.0 = perfectly fair).
        "p95_spread": (max(p95s) / min(p95s)) if p95s and min(p95s) > 0 else 1.0,
        #: Most/least answered-requests ratio across tenants.
        "answered_spread": (
            max(answered) / min(answered) if answered and min(answered) > 0 else 1.0
        ),
    }
    return {"per_tenant": per_tenant, "fairness": fairness}


async def _run_arm(
    backends: dict,
    stream: list[tuple[str, str]],
    profile: LoadProfile,
    config: ServerConfig,
    label: str = "arm",
    clock=SYSTEM_CLOCK,
) -> dict:
    _reset_link_memos(backends)
    server = InferenceServer(backends, config, clock=clock)
    with get_tracer().span(f"serve-bench.{label}", requests=len(stream)):
        async with server:
            stop = asyncio.Event()
            sampler = asyncio.ensure_future(
                _sample_queue_depth(server.pending, stop)
            )
            started = clock.now()
            results = await replay(server, stream, profile)
            wall_s = clock.now() - started
            stop.set()
            queue_depth = await sampler
    stats = server.stats()

    arm = _summarize(results, wall_s, offered_qps=profile.qps)
    arm.update(
        {
            "queue_depth": queue_depth,
            "counters": stats.counters,
            "cache": stats.cache,
            "stage_latency_ms": stats.latency_ms,
            "breakers": server.breaker_states(),
            # The arm's full unified-registry snapshot (serving.* instruments).
            "registry": server.metrics.registry.snapshot(),
        }
    )
    return arm


def _merged_stage_latency(router) -> dict:
    """Fleet-wide per-stage latency: every replica's histograms merged."""
    merged = {}
    for stage in STAGES:
        combined = LatencyHistogram()
        for replica in router.replicas.values():
            combined.merge(replica.server.metrics.histograms[stage])
        merged[stage] = combined.summary()
    return merged


async def _run_fleet_arm(
    backends: dict,
    stream: list[tuple[str, str]],
    profile: LoadProfile,
    fleet_profile: FleetProfile,
    config: ServerConfig,
    label: str = "fleet",
    *,
    qps: float | None = None,
    tenants: int = 1,
    quotas=None,
    clock=SYSTEM_CLOCK,
) -> dict:
    from repro.fleet import FleetConfig, build_fleet

    _reset_link_memos(backends)
    router = build_fleet(
        backends,
        fleet_profile.replicas,
        server_config=config,
        config=FleetConfig(
            cache_capacity=config.cache_capacity,
            vnodes=fleet_profile.vnodes,
            isolation=fleet_profile.isolation,
        ),
        quotas=quotas,
        clock=clock,
    )
    with get_tracer().span(
        f"serve-bench.{label}",
        requests=len(stream),
        replicas=fleet_profile.replicas,
    ):
        async with router:
            stop = asyncio.Event()
            sampler = asyncio.ensure_future(
                _sample_queue_depth(router.pending, stop)
            )
            started = clock.now()
            results = await replay(
                router, stream, profile, qps=qps, tenants=tenants
            )
            wall_s = clock.now() - started
            stop.set()
            queue_depth = await sampler

    arm = _summarize(results, wall_s, offered_qps=qps)
    fleet_stats = router.stats()
    arm.update(
        {
            "queue_depth": queue_depth,
            "replicas": fleet_profile.replicas,
            "counters": fleet_stats["counters"],
            "cache": fleet_stats["cache"],
            "stage_latency_ms": _merged_stage_latency(router),
            # Per-replica circuit breakers (uniform key for the gates).
            "breakers": fleet_stats["breakers"],
            "fleet": fleet_stats,
            # The merged fleet view: router fleet.* + replica.<slot>.serving.*.
            "registry": router.metrics_view(),
        }
    )
    if tenants > 1:
        arm["tenants"] = _tenant_stats(results)
    return arm


def _compare_answers(reference: dict, candidate: dict) -> dict:
    """Byte-identity of two arms' answer maps (the determinism contract)."""
    common = sorted(set(reference) & set(candidate))
    divergences = [
        {
            "question": key,
            "batched_sql": reference[key],
            "fleet_sql": candidate[key],
        }
        for key in common
        if reference[key] != candidate[key]
    ]
    return {
        "identical": not divergences,
        "compared": len(common),
        "divergences": divergences[:5],
    }


def run_serve_bench(
    backends: dict,
    questions_by_domain: dict[str, list[str]],
    profile: LoadProfile | None = None,
    config: ServerConfig | None = None,
    fleet: FleetProfile | None = None,
) -> dict:
    """Run the benchmark arms and return the comparison report.

    ``fleet`` adds the fleet arm (when ``fleet.replicas >= 2``) and, when
    ``fleet.soak_qps`` is set, the open-loop multi-tenant soak arm.
    """
    profile = profile or LoadProfile()
    config = config or ServerConfig()
    stream = build_stream(questions_by_domain, profile)
    unique = len({(domain, question) for domain, question in stream})

    unbatched_config = replace(config, max_batch=1, cache_capacity=0)
    unbatched = asyncio.run(
        _run_arm(backends, stream, profile, unbatched_config, label="unbatched")
    )
    batched = asyncio.run(
        _run_arm(backends, stream, profile, config, label="batched")
    )
    arms = {"unbatched": unbatched, "batched": batched}

    unbatched_qps = unbatched["throughput_qps"]
    report = {
        "schema_version": 2,
        "benchmark": "serving",
        # Capacity context for the fleet comparison: replica parallelism
        # (process isolation) cannot exceed the host's core count, so a
        # single-core host pins fleet_speedup near 1.0 by Little's law.
        "host": {"cpus": os.cpu_count()},
        # Trace artifact of the enclosing ``trace`` run (None otherwise).
        "trace_path": obs.current_trace_path(),
        "profile": asdict(profile),
        "fleet_profile": asdict(fleet) if fleet else None,
        "config": asdict(config),
        "stream": {
            "requests": len(stream),
            "unique_questions": unique,
            "domains": sorted(questions_by_domain),
        },
        "speedup": batched["throughput_qps"] / unbatched_qps if unbatched_qps else 0.0,
    }

    if fleet is not None and fleet.replicas >= 2:
        fleet_arm = asyncio.run(
            _run_fleet_arm(backends, stream, profile, fleet, config)
        )
        arms["fleet"] = fleet_arm
        batched_qps = batched["throughput_qps"]
        report["fleet_speedup"] = (
            fleet_arm["throughput_qps"] / batched_qps if batched_qps else 0.0
        )
        batched_queue_p95 = batched["queue_latency"]["p95_ms"]
        report["queue_p95_ratio"] = (
            fleet_arm["queue_latency"]["p95_ms"] / batched_queue_p95
            if batched_queue_p95
            else 0.0
        )
        report["fleet_identity"] = _compare_answers(
            batched["answers"], fleet_arm["answers"]
        )
        if fleet.soak_qps:
            soak_stream = (
                stream[: fleet.soak_requests] if fleet.soak_requests else stream
            )
            quotas = None
            if fleet.quota_rate:
                from repro.fleet import QuotaPolicy, TenantQuotas

                quotas = TenantQuotas(
                    default=QuotaPolicy(
                        rate_per_s=fleet.quota_rate,
                        burst=fleet.quota_burst or fleet.quota_rate,
                    )
                )
            arms["soak"] = asyncio.run(
                _run_fleet_arm(
                    backends,
                    soak_stream,
                    profile,
                    fleet,
                    config,
                    label="soak",
                    qps=fleet.soak_qps,
                    tenants=max(1, fleet.tenants),
                    quotas=quotas,
                )
            )

    # The answer maps fed the identity check; they don't belong in the report.
    for arm in arms.values():
        arm.pop("answers", None)
    report["arms"] = arms
    return report


def evaluate_gates(
    report: dict,
    *,
    assert_speedup: float | None = None,
    assert_p95_ms: float | None = None,
    assert_p99_ms: float | None = None,
    assert_fairness: float | None = None,
    assert_fleet_gain: bool = False,
    allow_rejections: bool = False,
) -> list[str]:
    """Every gate violation in a report (empty = the run passes).

    Robustness outcomes always gate: ``failed``/``timeout`` anywhere, and
    admission rejections unless ``allow_rejections``.  Quota rejections
    never gate — a token bucket refusing an over-limit tenant is the quota
    system working, not the serving tier failing.  A fleet arm that
    diverges from the batched arm's answers always gates (the determinism
    contract is not optional).
    """
    failures: list[str] = []
    for name, arm in report["arms"].items():
        statuses = arm.get("statuses", {})
        for status in ("failed", "timeout"):
            if statuses.get(status):
                failures.append(
                    f"arm {name!r}: {statuses[status]} {status} request(s)"
                )
        rejections = arm.get("rejections", {})
        if rejections.get("admission") and not allow_rejections:
            failures.append(
                f"arm {name!r}: {rejections['admission']} admission "
                "rejection(s) (pass --allow-rejections to tolerate overload)"
            )
        open_breakers = [
            key
            for key, snapshot in (arm.get("breakers") or {}).items()
            if snapshot.get("state") == "open"
        ]
        if open_breakers:
            failures.append(
                f"arm {name!r}: circuit breaker(s) left open: "
                + ", ".join(sorted(open_breakers))
            )

    if assert_speedup is not None and report["speedup"] < assert_speedup:
        failures.append(
            f"speedup {report['speedup']:.2f}x below required "
            f"{assert_speedup:.2f}x"
        )
    batched_latency = report["arms"]["batched"]["latency"]
    if assert_p95_ms is not None and batched_latency["p95_ms"] > assert_p95_ms:
        failures.append(
            f"batched p95 {batched_latency['p95_ms']:.2f} ms above required "
            f"{assert_p95_ms:.2f} ms"
        )
    if assert_p99_ms is not None and batched_latency["p99_ms"] > assert_p99_ms:
        failures.append(
            f"batched p99 {batched_latency['p99_ms']:.2f} ms above required "
            f"{assert_p99_ms:.2f} ms"
        )

    identity = report.get("fleet_identity")
    if identity is not None and not identity["identical"]:
        failures.append(
            f"fleet answers diverge from the batched arm on "
            f"{len(identity['divergences'])}+ question(s)"
        )
    if assert_fleet_gain:
        speedup = report.get("fleet_speedup")
        ratio = report.get("queue_p95_ratio")
        if speedup is None or ratio is None:
            failures.append("--assert-fleet-gain needs a fleet arm (--replicas >= 2)")
        elif not (speedup >= 2.0 or ratio <= 0.5):
            message = (
                f"fleet gain not met: speedup {speedup:.2f}x < 2.0x and "
                f"queue p95 ratio {ratio:.2f} > 0.5"
            )
            # On a single-CPU host process-isolated replicas cannot run in
            # parallel, so the gate degrades to a recorded warning (noted in
            # the report) instead of a hard failure.
            if report.get("host", {}).get("cpus") == 1:
                report.setdefault("warnings", []).append(
                    f"--assert-fleet-gain skipped on a 1-cpu host: {message}"
                )
            else:
                failures.append(message)
    if assert_fairness is not None:
        soak = report["arms"].get("soak") or report["arms"].get("fleet") or {}
        fairness = (soak.get("tenants") or {}).get("fairness")
        if fairness is None:
            failures.append("--assert-fairness needs a multi-tenant soak arm")
        elif fairness["p95_spread"] > assert_fairness:
            failures.append(
                f"tenant p95 spread {fairness['p95_spread']:.2f}x above "
                f"required {assert_fairness:.2f}x"
            )
    return failures


def write_report(report: dict, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def render_report(report: dict) -> str:
    """A short human-readable summary of one serve-bench report."""
    lines = [
        "serve-bench: {requests} requests over {domains} "
        "({unique} unique questions)".format(
            requests=report["stream"]["requests"],
            domains=", ".join(report["stream"]["domains"]),
            unique=report["stream"]["unique_questions"],
        )
    ]
    for arm in ("unbatched", "batched", "fleet", "soak"):
        data = report["arms"].get(arm)
        if data is None:
            continue
        latency = data["latency"]
        counters = data["counters"]
        extras = (
            f"cache_hits {counters['cache_hits']}   "
            f"coalesced {counters.get('coalesced', counters.get('single_flight', 0))}"
        )
        lines.append(
            f"  {arm:>9}: {data['throughput_qps']:8.1f} req/s   "
            f"p50 {latency['p50_ms']:7.2f} ms   "
            f"p95 {latency['p95_ms']:7.2f} ms   "
            f"p99 {latency['p99_ms']:7.2f} ms   " + extras
        )
    lines.append(f"  speedup (batched / unbatched): {report['speedup']:.2f}x")
    if "fleet_speedup" in report:
        identity = report.get("fleet_identity") or {}
        lines.append(
            f"  fleet   (fleet / batched):     {report['fleet_speedup']:.2f}x   "
            f"queue p95 ratio {report['queue_p95_ratio']:.2f}   "
            f"answers {'identical' if identity.get('identical') else 'DIVERGED'}"
        )
    soak = report["arms"].get("soak")
    if soak:
        line = (
            f"  soak: offered {soak['offered_qps']:.1f} req/s   "
            f"achieved {soak['achieved_qps']:.1f} req/s   "
            f"rejected quota={soak['rejections']['quota']} "
            f"admission={soak['rejections']['admission']}"
        )
        fairness = (soak.get("tenants") or {}).get("fairness")
        if fairness:
            line += f"   tenant p95 spread {fairness['p95_spread']:.2f}x"
        lines.append(line)
    return "\n".join(lines)
