"""Serving observability: counters, per-stage latency histograms, snapshots.

Backed by the unified :class:`~repro.obs.metrics.MetricsRegistry` — every
counter and histogram here is a registry instrument (``serving.*``), so a
server's accounting appears in the same snapshot as the runtime's and the
resilience layer's.  Latency buckets are the repo-wide shared layout
(:data:`~repro.obs.metrics.LATENCY_BUCKET_BOUNDS`, ≈50µs … ≈80s), not a
module-local copy, which keeps histogram percentiles consistent with the
load generator's exact-sample percentile math.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import LATENCY_BUCKET_BOUNDS, Histogram, MetricsRegistry

#: Pipeline stages with recorded latencies.  ``queue`` and ``total`` are
#: per-request; ``link``/``decode``/``execute`` are per-batch durations.
STAGES = ("queue", "link", "decode", "execute", "total")

#: Monotonic counters kept by :class:`ServerMetrics`.
COUNTERS = (
    "served",      # requests resolved with an answer (ok or degraded)
    "batches",     # predict_batch invocations
    "batched",     # requests decoded as part of a batch of size >= 2
    "coalesced",   # duplicate in-batch questions merged into one decode
    "cache_hits",  # requests answered from the result cache
    "rejected",    # admission rejections (bounded queue full)
    "degraded",    # requests answered by the fallback system
    "timeouts",    # requests that hit the per-request timeout
    "failed",      # requests with no answer at all
)


class LatencyHistogram(Histogram):
    """The shared fixed-bucket histogram, summarised in milliseconds."""

    def __init__(self, bounds: tuple[float, ...] = LATENCY_BUCKET_BOUNDS) -> None:
        super().__init__(bounds)

    def summary(self) -> dict:
        """Count / mean / p50 / p95 / p99 / max, times in milliseconds."""
        return {
            "count": self.count,
            "mean_ms": self.mean * 1000.0,
            "p50_ms": self.quantile(0.50) * 1000.0,
            "p95_ms": self.quantile(0.95) * 1000.0,
            "p99_ms": self.quantile(0.99) * 1000.0,
            "max_ms": self.max * 1000.0,
        }


@dataclass(frozen=True)
class ServerStats:
    """One immutable observability snapshot of a running server."""

    counters: dict
    latency_ms: dict
    cache: dict
    pending: int
    #: Per-domain circuit-breaker snapshots ({} when no breakers exist).
    breakers: dict = None  # type: ignore[assignment]

    def as_dict(self) -> dict:
        return {
            "counters": dict(self.counters),
            "latency_ms": {k: dict(v) for k, v in self.latency_ms.items()},
            "cache": dict(self.cache),
            "pending": self.pending,
            "breakers": {k: dict(v) for k, v in (self.breakers or {}).items()},
        }


class ServerMetrics:
    """Counters + per-stage histograms over one :class:`MetricsRegistry`."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry or MetricsRegistry()
        self._counters = {
            name: self.registry.counter(f"serving.{name}") for name in COUNTERS
        }
        self.histograms = {
            stage: self.registry.histogram(
                f"serving.latency.{stage}", cls=LatencyHistogram
            )
            for stage in STAGES
        }

    @property
    def counters(self) -> dict:
        return {name: counter.value for name, counter in self._counters.items()}

    def count(self, name: str, n: int = 1) -> None:
        self._counters[name].inc(n)

    def observe(self, stage: str, seconds: float) -> None:
        self.histograms[stage].observe(seconds)

    def snapshot(
        self,
        *,
        pending: int = 0,
        cache: dict | None = None,
        breakers: dict | None = None,
    ) -> ServerStats:
        return ServerStats(
            counters=self.counters,
            latency_ms={
                stage: histogram.summary()
                for stage, histogram in self.histograms.items()
            },
            cache=dict(cache or {}),
            pending=pending,
            breakers=dict(breakers or {}),
        )
