"""Serving observability: counters, per-stage latency histograms, snapshots.

Histograms are fixed-layout geometric buckets (≈50µs … ≈80s) so recording
is O(log buckets) with constant memory regardless of traffic volume;
quantiles are interpolated within the winning bucket and clamped to the
exact observed maximum.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

#: Pipeline stages with recorded latencies.  ``queue`` and ``total`` are
#: per-request; ``link``/``decode``/``execute`` are per-batch durations.
STAGES = ("queue", "link", "decode", "execute", "total")

#: Monotonic counters kept by :class:`ServerMetrics`.
COUNTERS = (
    "served",      # requests resolved with an answer (ok or degraded)
    "batches",     # predict_batch invocations
    "batched",     # requests decoded as part of a batch of size >= 2
    "coalesced",   # duplicate in-batch questions merged into one decode
    "cache_hits",  # requests answered from the result cache
    "rejected",    # admission rejections (bounded queue full)
    "degraded",    # requests answered by the fallback system
    "timeouts",    # requests that hit the per-request timeout
    "failed",      # requests with no answer at all
)


class LatencyHistogram:
    """Geometric-bucket latency histogram with interpolated quantiles."""

    def __init__(
        self, first_bound_s: float = 0.00005, growth: float = 1.5, buckets: int = 48
    ) -> None:
        bounds = []
        bound = first_bound_s
        for _ in range(buckets):
            bounds.append(bound)
            bound *= growth
        self._bounds = bounds  # upper bounds; final bucket is overflow
        self._counts = [0] * (buckets + 1)
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        self._counts[bisect.bisect_left(self._bounds, seconds)] += 1
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The q-quantile in seconds (0 when nothing was observed)."""
        if not self.count:
            return 0.0
        rank = max(1, int(q * self.count + 0.5))
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            if not bucket_count:
                continue
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank:
                lower = self._bounds[index - 1] if index > 0 else 0.0
                upper = (
                    self._bounds[index] if index < len(self._bounds) else self.max
                )
                fraction = (rank - previous) / bucket_count
                return min(lower + (upper - lower) * fraction, self.max)
        return self.max

    def summary(self) -> dict:
        """Count / mean / p50 / p95 / p99 / max, times in milliseconds."""
        return {
            "count": self.count,
            "mean_ms": self.mean * 1000.0,
            "p50_ms": self.quantile(0.50) * 1000.0,
            "p95_ms": self.quantile(0.95) * 1000.0,
            "p99_ms": self.quantile(0.99) * 1000.0,
            "max_ms": self.max * 1000.0,
        }


@dataclass(frozen=True)
class ServerStats:
    """One immutable observability snapshot of a running server."""

    counters: dict
    latency_ms: dict
    cache: dict
    pending: int
    #: Per-domain circuit-breaker snapshots ({} when no breakers exist).
    breakers: dict = None  # type: ignore[assignment]

    def as_dict(self) -> dict:
        return {
            "counters": dict(self.counters),
            "latency_ms": {k: dict(v) for k, v in self.latency_ms.items()},
            "cache": dict(self.cache),
            "pending": self.pending,
            "breakers": {k: dict(v) for k, v in (self.breakers or {}).items()},
        }


class ServerMetrics:
    """Counters + per-stage histograms; mutated only on the event loop."""

    def __init__(self) -> None:
        self.counters = dict.fromkeys(COUNTERS, 0)
        self.histograms = {stage: LatencyHistogram() for stage in STAGES}

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] += n

    def observe(self, stage: str, seconds: float) -> None:
        self.histograms[stage].observe(seconds)

    def snapshot(
        self,
        *,
        pending: int = 0,
        cache: dict | None = None,
        breakers: dict | None = None,
    ) -> ServerStats:
        return ServerStats(
            counters=dict(self.counters),
            latency_ms={
                stage: histogram.summary()
                for stage, histogram in self.histograms.items()
            },
            cache=dict(cache or {}),
            pending=pending,
            breakers=dict(breakers or {}),
        )
