"""Request/result types of the serving layer.

A served request always resolves to a :class:`ServeResult` — robustness
outcomes (admission rejection, timeout, decode failure) are structured
statuses with a :class:`ServeError` attached, never bare exceptions, so
load generators and callers can account for every request.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Terminal request statuses.
#:
#: ``ok``        decoded by the primary system (possibly from the cache)
#: ``degraded``  primary raised; answered by the template fallback
#: ``rejected``  bounded queue was full — explicit admission rejection
#: ``timeout``   no result within the per-request timeout
#: ``failed``    decode failed and no fallback could answer
STATUSES = ("ok", "degraded", "rejected", "timeout", "failed")


@dataclass(frozen=True)
class ServeError:
    """A structured serving error: machine-readable kind + human message."""

    kind: str
    message: str

    def as_dict(self) -> dict:
        return {"kind": self.kind, "message": self.message}


@dataclass
class ServeResult:
    """The outcome of one served request."""

    question: str
    domain: str
    sql: str | None = None
    #: Executed result rows when the server runs with ``execute=True``.
    rows: tuple | None = None
    status: str = "ok"
    error: ServeError | None = None
    #: Served from the result cache (no decode happened for this request).
    cached: bool = False
    #: Slot of the fleet replica that decoded this request (None outside a
    #: fleet, and for cache hits / rejections that never reached a replica).
    replica: str | None = None
    #: Coalesced onto another request's in-flight decode by the fleet's
    #: single-flight table (no decode happened for this request either).
    single_flight: bool = False
    #: Tenant the fleet router accounted this request to (None outside a
    #: fleet; the single server has no tenant concept).
    tenant: str | None = None
    #: Number of requests decoded together with this one (0 for non-decoded
    #: outcomes: cache hits, rejections, timeouts).
    batch_size: int = 0
    #: Per-stage wall time in milliseconds.  ``queue`` and ``total`` are
    #: per-request; ``link``/``decode``/``execute`` are the batch's shared
    #: stage durations.
    timings_ms: dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when the request produced an answer (possibly degraded)."""
        return self.status in ("ok", "degraded")
