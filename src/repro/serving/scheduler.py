"""Micro-batching: coalesce queued requests into bounded batches.

The policy is the classic serving trade-off: wait at most ``max_wait_ms``
after the first request for companions, never exceed ``max_batch``.  With
``max_batch=1`` the collector degenerates to a plain queue read — that is
the "unbatched" benchmark arm.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.resilience.clock import SYSTEM_CLOCK


@dataclass(frozen=True)
class BatchPolicy:
    """How aggressively queued requests are coalesced."""

    max_batch: int = 8
    max_wait_ms: float = 2.0


async def collect_batch(
    queue: asyncio.Queue, policy: BatchPolicy, *, clock=SYSTEM_CLOCK.now
) -> list:
    """Collect one micro-batch from ``queue``.

    Waits (unboundedly) for the first item, then keeps collecting until the
    batch is full or ``max_wait_ms`` has elapsed since the first item was
    taken; whatever is immediately available at the deadline still joins
    the batch.
    """
    first = await queue.get()
    batch = [first]
    if policy.max_batch <= 1:
        return batch
    deadline = clock() + policy.max_wait_ms / 1000.0
    while len(batch) < policy.max_batch:
        remaining = deadline - clock()
        if remaining <= 0:
            try:
                batch.append(queue.get_nowait())
            except asyncio.QueueEmpty:
                break
            continue
        try:
            batch.append(await asyncio.wait_for(queue.get(), timeout=remaining))
        except asyncio.TimeoutError:
            break
    return batch
