"""The async NL-to-SQL inference server.

Request lifecycle::

    submit() ──> result cache ──hit──> ServeResult(cached=True)
        │ queue full? ────────────────> status "rejected" (admission control)
        ▼
    per-domain bounded asyncio.Queue
        ▼
    worker: collect_batch (max_batch / max_wait_ms)  ──>  decode thread:
        link warm → predict_batch → optional execute
        │ primary raises ──> per-question retry ──> template fallback
        ▼
    futures resolved, latencies recorded, primary answers cached

Determinism contract: a batch deduplicates only *exact* duplicate
questions, and ``predict_batch`` is pure, so for any interleaving and any
batch size the served SQL is byte-identical to calling ``system.predict``
one question at a time (asserted across batch sizes and request orders in
``tests/test_serving.py``).  The result cache is the one deliberate
exception: it keys on the *normalized* question, treating case/whitespace
variants as the same question.

Robustness: admission is rejected explicitly when a domain's bounded queue
is full (no unbounded growth), every request carries a timeout that
surfaces as a structured ``timeout`` error, and a primary-system exception
degrades the request to the template fallback instead of failing it.  A
per-domain :class:`~repro.resilience.CircuitBreaker` guards the primary
system: after ``breaker_failures`` consecutive failures the server stops
calling the primary entirely and fast-fails to the fallback, probing the
primary again only after ``breaker_reset_s`` of the injected clock.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.obs import get_tracer
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.clock import SYSTEM_CLOCK
from repro.serving.cache import CachedResult, ResultCache
from repro.serving.metrics import ServerMetrics, ServerStats
from repro.serving.request import ServeError, ServeResult
from repro.serving.scheduler import BatchPolicy, collect_batch


@dataclass
class DomainBackend:
    """Everything the server needs to answer questions for one domain."""

    name: str
    #: Primary system: ``predict(question, db_id)`` / ``predict_batch``.
    system: object
    #: Database for the optional execute stage (None disables it).
    database: object | None = None
    #: Degraded-mode system consulted when the primary raises.
    fallback: object | None = None


@dataclass(frozen=True)
class ServerConfig:
    """Scheduling and robustness knobs of one :class:`InferenceServer`."""

    max_batch: int = 8
    max_wait_ms: float = 2.0
    #: Bounded per-domain queue; a full queue rejects admissions.
    queue_limit: int = 64
    request_timeout_s: float = 30.0
    #: Result-cache entries (0 disables caching).
    cache_capacity: int = 256
    #: Also execute the predicted SQL and attach the result rows.
    execute: bool = False
    #: Consecutive primary-system failures that open the circuit breaker.
    breaker_failures: int = 5
    #: Seconds the breaker stays open before probing the primary again.
    breaker_reset_s: float = 30.0


class _Pending:
    """One queued request awaiting its batch."""

    __slots__ = ("question", "future", "enqueued_at", "abandoned", "queue_span")

    def __init__(self, question: str, future: asyncio.Future, enqueued_at: float) -> None:
        self.question = question
        self.future = future
        self.enqueued_at = enqueued_at
        self.abandoned = False
        #: Open ``serve.queue`` span (NULL_SPAN when tracing is off); started
        #: at admission, ended by the worker that dequeues the request.
        self.queue_span = None


@dataclass
class _Answer:
    """Per-question outcome of a decoded batch."""

    sql: str | None = None
    status: str = "ok"
    message: str | None = None
    rows: tuple | None = None


@dataclass
class _BatchOutcome:
    """What one decode-thread run produced for a batch's unique questions."""

    answers: dict[str, _Answer] = field(default_factory=dict)
    link_s: float = 0.0
    decode_s: float = 0.0
    execute_s: float = 0.0


class InferenceServer:
    """Serves concurrent NL questions over a set of domain backends."""

    def __init__(
        self,
        backends: dict[str, DomainBackend] | list[DomainBackend],
        config: ServerConfig | None = None,
        clock=SYSTEM_CLOCK,
        labels: dict | None = None,
    ) -> None:
        if not isinstance(backends, dict):
            backends = {backend.name: backend for backend in backends}
        self.backends = dict(backends)
        self.config = config or ServerConfig()
        #: Static span attributes (e.g. ``replica=<slot>`` in a fleet) so
        #: one trace attributes every span to the server that emitted it.
        self.labels = dict(labels or {})
        self.cache = ResultCache(self.config.cache_capacity)
        self.metrics = ServerMetrics()
        self.clock = clock
        self._breakers = {
            name: CircuitBreaker(
                f"primary:{name}",
                failure_threshold=self.config.breaker_failures,
                reset_timeout_s=self.config.breaker_reset_s,
                clock=clock,
            )
            for name in self.backends
        }
        # Queues exist from construction so admission control (and tests)
        # do not depend on the workers having started yet.
        self._queues = {
            name: asyncio.Queue(maxsize=self.config.queue_limit)
            for name in self.backends
        }
        self._workers: list[asyncio.Task] = []
        self._executor: ThreadPoolExecutor | None = None
        self._started = False

    # -- lifecycle ----------------------------------------------------------------

    async def start(self) -> None:
        if self._started:
            return
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, len(self.backends)), thread_name_prefix="serve-decode"
        )
        for name in self.backends:
            self._workers.append(
                asyncio.create_task(self._worker(name), name=f"serve-{name}")
            )
        self._started = True

    async def stop(self) -> None:
        if not self._started:
            return
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers.clear()
        # Fail whatever is still queued rather than leaving callers hanging.
        for domain, queue in self._queues.items():
            while True:
                try:
                    item = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                get_tracer().end_span(item.queue_span, status="error")
                if not item.future.done():
                    self.metrics.count("failed")
                    item.future.set_result(
                        self._error_result(
                            item.question, domain, "failed",
                            ServeError("shutdown", "server stopped before decoding"),
                        )
                    )
        executor, self._executor = self._executor, None
        if executor is not None:
            # The (waiting) shutdown happens off the event loop so a slow
            # decode thread cannot stall every other coroutine.
            await asyncio.get_running_loop().run_in_executor(None, executor.shutdown)
        self._started = False

    async def __aenter__(self) -> "InferenceServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- the request path ---------------------------------------------------------

    async def submit(self, question: str, domain: str) -> ServeResult:
        """Serve one question; always resolves to a :class:`ServeResult`."""
        tracer = get_tracer()
        started = self.clock.now()
        with tracer.span("serve.request", domain=domain, **self.labels) as span:
            backend = self.backends.get(domain)
            if backend is None:
                span.set_attr("status", "failed")
                self.metrics.count("failed")
                return self._error_result(
                    question, domain, "failed",
                    ServeError("unknown-domain", f"domain {domain!r} is not served"),
                )

            hit, entry = self.cache.get(domain, question)
            if hit:
                span.set_attr("cache", "hit")
                span.set_attr("status", "ok")
                self.metrics.count("served")
                self.metrics.count("cache_hits")
                total = self.clock.now() - started
                self.metrics.observe("total", total)
                return ServeResult(
                    question=question, domain=domain, sql=entry.sql, rows=entry.rows,
                    status="ok", cached=True, timings_ms={"total": total * 1000.0},
                )
            span.set_attr("cache", "miss")

            queue = self._queues[domain]
            if queue.full():
                span.set_attr("status", "rejected")
                self.metrics.count("rejected")
                return self._error_result(
                    question, domain, "rejected",
                    ServeError(
                        "rejected",
                        f"admission rejected: {domain!r} queue is at its limit "
                        f"of {self.config.queue_limit}",
                    ),
                )
            item = _Pending(question, asyncio.get_running_loop().create_future(), started)
            # Parents to serve.request via the contextvar; the worker ends it.
            item.queue_span = tracer.start_span("serve.queue")
            queue.put_nowait(item)
            try:
                result = await asyncio.wait_for(
                    asyncio.shield(item.future), self.config.request_timeout_s
                )
            except asyncio.TimeoutError:
                item.abandoned = True
                span.set_attr("status", "timeout")
                self.metrics.count("timeouts")
                return self._error_result(
                    question, domain, "timeout",
                    ServeError(
                        "timeout",
                        f"no result within {self.config.request_timeout_s:g}s",
                    ),
                )
            total = self.clock.now() - started
            result.timings_ms["total"] = total * 1000.0
            self.metrics.observe("total", total)
            span.set_attr("status", result.status)
            return result

    def pending(self) -> int:
        """Requests currently queued (admitted, not yet dequeued)."""
        return sum(queue.qsize() for queue in self._queues.values())

    def stats(self) -> ServerStats:
        """A point-in-time observability snapshot."""
        return self.metrics.snapshot(
            pending=self.pending(),
            cache=self.cache.stats(),
            breakers=self.breaker_states(),
        )

    def breaker_states(self) -> dict[str, dict]:
        """Per-domain circuit-breaker snapshots (state + counters)."""
        return {name: breaker.snapshot() for name, breaker in self._breakers.items()}

    # -- batch execution ----------------------------------------------------------

    async def _worker(self, domain: str) -> None:
        backend = self.backends[domain]
        queue = self._queues[domain]
        policy = BatchPolicy(self.config.max_batch, self.config.max_wait_ms)
        loop = asyncio.get_running_loop()
        tracer = get_tracer()
        while True:
            batch = await collect_batch(queue, policy, clock=self.clock.now)
            now = self.clock.now()
            live: list[_Pending] = []
            for item in batch:
                tracer.end_span(item.queue_span)
                if item.abandoned or item.future.done():
                    continue
                self.metrics.observe("queue", now - item.enqueued_at)
                live.append(item)
            if not live:
                continue
            questions = [item.question for item in live]
            # Manual span: decode happens on the executor thread, which does
            # not inherit this task's context.
            batch_span = tracer.start_span(
                "serve.batch", domain=domain, size=len(live), **self.labels
            )
            outcome = await loop.run_in_executor(
                self._executor, self._decode_batch, backend, questions, batch_span
            )
            self._resolve(backend, live, outcome, batch_span)

    def _decode_batch(
        self, backend: DomainBackend, questions: list[str], batch_span=None
    ) -> _BatchOutcome:
        """Runs in the decode thread: link warm → predict_batch → execute."""
        tracer = get_tracer()
        outcome = _BatchOutcome()
        unique = list(dict.fromkeys(questions))

        # Stage 1: schema linking, warmed once per batch.  The systems' link
        # memo makes every decode below reuse these results.
        started = self.clock.now()
        stage_span = tracer.start_span("serve.link", parent=batch_span)
        link = getattr(backend.system, "link", None)
        if link is not None:
            for question in unique:
                try:
                    link(question, backend.name)
                # checks: ignore[hyg.broad-except] -- warm-up is best-effort by design; any linking failure recurs inside predict and is handled there
                except Exception:
                    pass  # linking trouble surfaces as a decode failure below
        tracer.end_span(stage_span)
        outcome.link_s = self.clock.now() - started

        # Stage 2: decoding, with per-question degradation on failure.  The
        # breaker gate is checked once per batch: an open circuit fast-fails
        # the whole batch to the fallback without touching the primary.
        started = self.clock.now()
        stage_span = tracer.start_span(
            "serve.predict", parent=batch_span, n_unique=len(unique)
        )
        breaker = self._breakers[backend.name]
        if not breaker.allow():
            stage_span.set_attr("breaker", "open")
            for question in unique:
                outcome.answers[question] = self._fallback_answer(
                    backend, question,
                    f"circuit breaker open for primary:{backend.name}: "
                    "primary system skipped",
                )
        else:
            try:
                batch_sql = backend.system.predict_batch(unique, backend.name)
                for question, sql in zip(unique, batch_sql):
                    outcome.answers[question] = _Answer(sql=sql)
                breaker.record_success()
            except Exception as batch_exc:
                breaker.record_failure()
                stage_span.set_attr("batch_error", type(batch_exc).__name__)
                for question in unique:
                    outcome.answers[question] = self._decode_one(backend, question)
        tracer.end_span(stage_span)
        outcome.decode_s = self.clock.now() - started

        # Stage 3: optional execution of the predicted SQL.
        if self.config.execute and backend.database is not None:
            started = self.clock.now()
            stage_span = tracer.start_span("serve.execute", parent=batch_span)
            for answer in outcome.answers.values():
                if answer.sql is None:
                    continue
                result = backend.database.try_execute(answer.sql)
                if result is not None:
                    answer.rows = tuple(result.rows)
            tracer.end_span(stage_span)
            outcome.execute_s = self.clock.now() - started
        return outcome

    def _decode_one(self, backend: DomainBackend, question: str) -> _Answer:
        breaker = self._breakers[backend.name]
        if not breaker.allow():
            return self._fallback_answer(
                backend, question,
                f"circuit breaker open for primary:{backend.name}: "
                "primary system skipped",
            )
        try:
            answer = _Answer(sql=backend.system.predict(question, backend.name))
        except Exception as primary_exc:
            breaker.record_failure()
            return self._fallback_answer(
                backend, question,
                f"primary system raised {type(primary_exc).__name__}: "
                f"{primary_exc}",
            )
        breaker.record_success()
        return answer

    def _fallback_answer(
        self, backend: DomainBackend, question: str, reason: str
    ) -> _Answer:
        """Serve ``question`` without the primary system (it raised, or the
        breaker fast-failed it): degraded via the fallback when one exists."""
        if backend.fallback is None:
            return _Answer(
                status="failed",
                message=f"{reason} (no fallback configured)",
            )
        try:
            sql = backend.fallback.predict(question, backend.name)
        except Exception as fallback_exc:
            return _Answer(
                status="failed",
                message=f"{reason}; fallback raised "
                        f"{type(fallback_exc).__name__}",
            )
        return _Answer(sql=sql, status="degraded", message=reason)

    def _resolve(
        self,
        backend: DomainBackend,
        items: list[_Pending],
        outcome: _BatchOutcome,
        batch_span=None,
    ) -> None:
        """Back on the event loop: account the batch and resolve futures."""
        n_unique = len(outcome.answers)
        if batch_span is not None:
            batch_span.set_attr("n_unique", n_unique)
            get_tracer().end_span(batch_span)
        self.metrics.count("batches")
        self.metrics.count("coalesced", len(items) - n_unique)
        if len(items) >= 2:
            self.metrics.count("batched", len(items))
        self.metrics.observe("link", outcome.link_s)
        self.metrics.observe("decode", outcome.decode_s)
        if self.config.execute:
            self.metrics.observe("execute", outcome.execute_s)

        stage_ms = {
            "link": outcome.link_s * 1000.0,
            "decode": outcome.decode_s * 1000.0,
        }
        if self.config.execute:
            stage_ms["execute"] = outcome.execute_s * 1000.0

        cached: set[str] = set()
        for item in items:
            answer = outcome.answers[item.question]
            if answer.status == "ok" and item.question not in cached:
                self.cache.put(
                    backend.name, item.question,
                    CachedResult(sql=answer.sql, rows=answer.rows),
                )
                cached.add(item.question)
            if answer.status == "failed":
                self.metrics.count("failed")
            else:
                self.metrics.count("served")
                if answer.status == "degraded":
                    self.metrics.count("degraded")
            if item.future.done():
                continue  # timed out mid-decode; the result is discarded
            error = None
            if answer.status in ("degraded", "failed"):
                kind = "degraded" if answer.status == "degraded" else "decode-failed"
                error = ServeError(kind, answer.message or "")
            item.future.set_result(
                ServeResult(
                    question=item.question,
                    domain=backend.name,
                    sql=answer.sql,
                    rows=answer.rows,
                    status=answer.status,
                    error=error,
                    batch_size=len(items),
                    timings_ms={
                        "queue": (self.clock.now() - item.enqueued_at) * 1000.0,
                        **stage_ms,
                    },
                )
            )

    # -- helpers ------------------------------------------------------------------

    @staticmethod
    def _error_result(
        question: str, domain: str, status: str, error: ServeError
    ) -> ServeResult:
        return ServeResult(
            question=question, domain=domain, status=status, error=error
        )
