"""MiniSpider: the Spider-benchmark stand-in (hardness, domains, corpus)."""

from repro.spider.corpus import SpiderCorpus, build_corpus
from repro.spider.domains import DOMAIN_BUILDERS
from repro.spider.hardness import HARDNESS_LEVELS, classify_hardness, hardness_distribution
from repro.spider.sampler import QuerySampler

__all__ = [
    "SpiderCorpus",
    "build_corpus",
    "DOMAIN_BUILDERS",
    "classify_hardness",
    "hardness_distribution",
    "HARDNESS_LEVELS",
    "QuerySampler",
]
