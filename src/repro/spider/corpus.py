"""MiniSpider corpus assembly: databases + train/dev NL/SQL pairs.

Plays Spider's three roles in the paper: (a) out-of-domain training data for
the NL-to-SQL systems, (b) the source of generic query templates for the
augmentation pipeline, and (c) an in-domain control evaluation (the bottom
rows of Table 5 and the whole of Table 3).

Natural language questions are produced by the canonical realizer with its
paraphrase sampling, so the corpus has the multi-phrasing property of real
Spider (several questions per query intent, different surface forms between
train and dev).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.datasets.records import NLSQLPair, Split
from repro.engine.database import Database
from repro.nlgen.realizer import Realizer
from repro.schema.enhanced import EnhancedSchema
from repro.schema.introspect import profile_database
from repro.spider.domains import DOMAIN_BUILDERS
from repro.spider.sampler import QuerySampler


@dataclass
class SpiderCorpus:
    """The MiniSpider bundle used across all experiments."""

    databases: dict[str, Database] = field(default_factory=dict)
    enhanced: dict[str, EnhancedSchema] = field(default_factory=dict)
    train: Split = field(default_factory=lambda: Split(name="spider-train"))
    dev: Split = field(default_factory=lambda: Split(name="spider-dev"))

    def database(self, db_id: str) -> Database:
        return self.databases[db_id]

    def enhanced_for(self, db_id: str) -> EnhancedSchema:
        return self.enhanced[db_id]

    def realizer_for(self, db_id: str) -> Realizer:
        return Realizer(self.enhanced[db_id])


def build_corpus(
    train_per_db: int = 60,
    dev_per_db: int = 20,
    seed: int = 7,
    domains: list[str] | None = None,
) -> SpiderCorpus:
    """Build MiniSpider: every registered domain, sampled queries, realized NL.

    Train and dev queries are drawn from disjoint sampling streams; dev
    additionally re-realizes its questions with an independent RNG so surface
    forms differ from train even for structurally similar queries.
    """
    corpus = SpiderCorpus()
    names = domains if domains is not None else list(DOMAIN_BUILDERS)
    for index, name in enumerate(names):
        builder = DOMAIN_BUILDERS[name]
        data_rng = random.Random(seed * 1000 + index)
        database = builder(data_rng)
        enhanced = profile_database(database)
        corpus.databases[name] = database
        corpus.enhanced[name] = enhanced

        realizer = Realizer(enhanced)
        sample_rng = random.Random(seed * 2000 + index)
        sampler = QuerySampler(database, enhanced, sample_rng)
        queries = sampler.sample_many(train_per_db + dev_per_db)

        train_rng = random.Random(seed * 3000 + index)
        dev_rng = random.Random(seed * 4000 + index)
        for i, sql in enumerate(queries):
            if i < train_per_db:
                question = realizer.realize_sql(sql, train_rng)
                corpus.train.pairs.append(
                    NLSQLPair(question=question, sql=sql, db_id=name, source="spider")
                )
            else:
                question = realizer.realize_sql(sql, dev_rng)
                corpus.dev.pairs.append(
                    NLSQLPair(question=question, sql=sql, db_id=name, source="spider")
                )
    return corpus
