"""MiniSpider domains: small general-knowledge databases.

Spider's databases cover everyday topics — concerts, pets, colleges, flights
— with few tables and columns (3.5 tables / 23 columns per DB on average,
Table 1).  MiniSpider rebuilds that profile with ten compact databases.
Each build function returns a populated :class:`~repro.engine.Database`;
enhanced schemas are profiled from the data by the corpus builder.
"""

from __future__ import annotations

import random
from collections.abc import Callable

from repro.datasets import generators as gen
from repro.engine.database import Database, create_database
from repro.schema.model import Column, ColumnType, ForeignKey, Schema, TableDef

I = ColumnType.INTEGER
F = ColumnType.REAL
T = ColumnType.TEXT


def _schema(name: str, tables, fks=()) -> Schema:
    return Schema(name=name, tables=tuple(tables), foreign_keys=tuple(fks))


def _table(name: str, cols, pk: str | None = None, alias: str | None = None) -> TableDef:
    return TableDef(
        name,
        tuple(Column(cname, ctype, alias=calias) for cname, ctype, calias in cols),
        primary_key=pk,
        alias=alias,
    )


def build_concert_singer(rng: random.Random) -> Database:
    schema = _schema(
        "concert_singer",
        [
            _table(
                "singer",
                [
                    ("singer_id", I, "singer id"),
                    ("name", T, "name"),
                    ("country", T, "country"),
                    ("age", I, "age"),
                    ("is_male", ColumnType.BOOLEAN, "is male"),
                ],
                pk="singer_id",
                alias="singer",
            ),
            _table(
                "stadium",
                [
                    ("stadium_id", I, "stadium id"),
                    ("name", T, "stadium name"),
                    ("location", T, "location"),
                    ("capacity", I, "capacity"),
                ],
                pk="stadium_id",
                alias="stadium",
            ),
            _table(
                "concert",
                [
                    ("concert_id", I, "concert id"),
                    ("concert_name", T, "concert name"),
                    ("stadium_id", I, "stadium id"),
                    ("singer_id", I, "singer id"),
                    ("year", I, "year"),
                ],
                pk="concert_id",
                alias="concert",
            ),
        ],
        [
            ForeignKey("concert", "stadium_id", "stadium", "stadium_id"),
            ForeignKey("concert", "singer_id", "singer", "singer_id"),
        ],
    )
    db = create_database(schema)
    countries = ["USA", "UK", "France", "Japan", "Brazil", "Canada"]
    db.insert(
        "singer",
        [
            (i, gen.person_name(rng), gen.skewed_choice(rng, countries),
             rng.randint(18, 70), rng.random() < 0.5)
            for i in range(1, 41)
        ],
    )
    db.insert(
        "stadium",
        [
            (i, f"{gen.word(rng, 2).capitalize()} Arena",
             gen.word(rng, 2).capitalize(), rng.randint(2000, 90000))
            for i in range(1, 13)
        ],
    )
    db.insert(
        "concert",
        [
            (i, gen.title(rng, 2), rng.randint(1, 12), rng.randint(1, 40),
             rng.randint(2005, 2022))
            for i in range(1, 81)
        ],
    )
    return db


def build_pets(rng: random.Random) -> Database:
    schema = _schema(
        "pets",
        [
            _table(
                "student",
                [
                    ("student_id", I, "student id"),
                    ("name", T, "name"),
                    ("major", T, "major"),
                    ("age", I, "age"),
                    ("city", T, "city"),
                ],
                pk="student_id",
                alias="student",
            ),
            _table(
                "pet",
                [
                    ("pet_id", I, "pet id"),
                    ("pet_type", T, "pet type"),
                    ("pet_age", I, "pet age"),
                    ("weight", F, "weight"),
                ],
                pk="pet_id",
                alias="pet",
            ),
            _table(
                "has_pet",
                [("student_id", I, "student id"), ("pet_id", I, "pet id")],
                alias="pet ownership",
            ),
        ],
        [
            ForeignKey("has_pet", "student_id", "student", "student_id"),
            ForeignKey("has_pet", "pet_id", "pet", "pet_id"),
        ],
    )
    db = create_database(schema)
    majors = ["Biology", "History", "Physics", "Economics", "Art"]
    db.insert(
        "student",
        [
            (i, gen.person_name(rng), gen.skewed_choice(rng, majors),
             rng.randint(18, 30), gen.word(rng, 2).capitalize())
            for i in range(1, 61)
        ],
    )
    db.insert(
        "pet",
        [
            (i, gen.skewed_choice(rng, ["dog", "cat", "bird", "hamster"]),
             rng.randint(1, 15), gen.bounded_float(rng, 0.2, 45.0, 1))
            for i in range(1, 41)
        ],
    )
    pairs = {(rng.randint(1, 60), rng.randint(1, 40)) for _ in range(50)}
    db.insert("has_pet", sorted(pairs))
    return db


def build_college(rng: random.Random) -> Database:
    schema = _schema(
        "college",
        [
            _table(
                "department",
                [
                    ("dept_id", I, "department id"),
                    ("dept_name", T, "department name"),
                    ("building", T, "building"),
                    ("budget", F, "budget"),
                ],
                pk="dept_id",
                alias="department",
            ),
            _table(
                "course",
                [
                    ("course_id", I, "course id"),
                    ("title", T, "title"),
                    ("dept_id", I, "department id"),
                    ("credits", I, "credits"),
                ],
                pk="course_id",
                alias="course",
            ),
            _table(
                "enrollment",
                [
                    ("enrollment_id", I, "enrollment id"),
                    ("course_id", I, "course id"),
                    ("student_name", T, "student name"),
                    ("grade", F, "grade"),
                    ("semester", T, "semester"),
                ],
                pk="enrollment_id",
                alias="enrollment",
            ),
        ],
        [
            ForeignKey("course", "dept_id", "department", "dept_id"),
            ForeignKey("enrollment", "course_id", "course", "course_id"),
        ],
    )
    db = create_database(schema)
    names = ["Computer Science", "Mathematics", "Chemistry", "Philosophy", "Music"]
    db.insert(
        "department",
        [
            (i, name, f"Building {gen.acronym(rng, 1)}",
             round(rng.uniform(0.5, 9.0) * 1_000_000, 2))
            for i, name in enumerate(names, start=1)
        ],
    )
    db.insert(
        "course",
        [
            (i, gen.title(rng, 3), rng.randint(1, len(names)), rng.choice([3, 4, 6]))
            for i in range(1, 41)
        ],
    )
    db.insert(
        "enrollment",
        [
            (i, rng.randint(1, 40), gen.person_name(rng),
             gen.bounded_float(rng, 1.0, 6.0, 1),
             gen.skewed_choice(rng, ["Fall 2021", "Spring 2022", "Fall 2022"]))
            for i in range(1, 201)
        ],
    )
    return db


def build_flights(rng: random.Random) -> Database:
    schema = _schema(
        "flights",
        [
            _table(
                "airline",
                [
                    ("airline_id", I, "airline id"),
                    ("airline_name", T, "airline name"),
                    ("country", T, "country"),
                ],
                pk="airline_id",
                alias="airline",
            ),
            _table(
                "airport",
                [
                    ("airport_code", T, "airport code"),
                    ("airport_name", T, "airport name"),
                    ("city", T, "city"),
                ],
                pk="airport_code",
                alias="airport",
            ),
            _table(
                "flight",
                [
                    ("flight_id", I, "flight id"),
                    ("airline_id", I, "airline id"),
                    ("source_airport", T, "source airport"),
                    ("dest_airport", T, "destination airport"),
                    ("distance", I, "distance"),
                    ("price", F, "price"),
                ],
                pk="flight_id",
                alias="flight",
            ),
        ],
        [
            ForeignKey("flight", "airline_id", "airline", "airline_id"),
            ForeignKey("flight", "source_airport", "airport", "airport_code"),
            ForeignKey("flight", "dest_airport", "airport", "airport_code"),
        ],
    )
    db = create_database(schema)
    db.insert(
        "airline",
        [
            (i, f"{gen.word(rng, 2).capitalize()} Air",
             gen.skewed_choice(rng, ["USA", "UK", "Germany", "Japan"]))
            for i in range(1, 9)
        ],
    )
    codes = ["JFK", "LAX", "ORD", "LHR", "CDG", "FRA", "HND", "SFO"]
    db.insert(
        "airport",
        [(code, f"{gen.word(rng, 2).capitalize()} International", gen.word(rng, 2).capitalize()) for code in codes],
    )
    db.insert(
        "flight",
        [
            (i, rng.randint(1, 8), rng.choice(codes), rng.choice(codes),
             rng.randint(200, 9000), gen.bounded_float(rng, 59.0, 1800.0, 2))
            for i in range(1, 121)
        ],
    )
    return db


def build_employees(rng: random.Random) -> Database:
    schema = _schema(
        "employees",
        [
            _table(
                "department",
                [
                    ("dept_id", I, "department id"),
                    ("dept_name", T, "department name"),
                    ("city", T, "city"),
                ],
                pk="dept_id",
                alias="department",
            ),
            _table(
                "employee",
                [
                    ("emp_id", I, "employee id"),
                    ("name", T, "name"),
                    ("dept_id", I, "department id"),
                    ("salary", F, "salary"),
                    ("hire_year", I, "hire year"),
                    ("job_title", T, "job title"),
                ],
                pk="emp_id",
                alias="employee",
            ),
        ],
        [ForeignKey("employee", "dept_id", "department", "dept_id")],
    )
    db = create_database(schema)
    depts = ["Sales", "Engineering", "Marketing", "Finance", "Support"]
    db.insert(
        "department",
        [(i, name, gen.word(rng, 2).capitalize()) for i, name in enumerate(depts, 1)],
    )
    titles = ["Manager", "Analyst", "Engineer", "Clerk", "Director"]
    db.insert(
        "employee",
        [
            (i, gen.person_name(rng), rng.randint(1, len(depts)),
             round(rng.uniform(32000, 180000), 2), rng.randint(1998, 2022),
             gen.skewed_choice(rng, titles))
            for i in range(1, 101)
        ],
    )
    return db


def build_shop(rng: random.Random) -> Database:
    schema = _schema(
        "shop",
        [
            _table(
                "customer",
                [
                    ("customer_id", I, "customer id"),
                    ("name", T, "name"),
                    ("city", T, "city"),
                    ("member_since", I, "member since year"),
                ],
                pk="customer_id",
                alias="customer",
            ),
            _table(
                "product",
                [
                    ("product_id", I, "product id"),
                    ("product_name", T, "product name"),
                    ("category", T, "category"),
                    ("price", F, "price"),
                    ("stock", I, "stock"),
                ],
                pk="product_id",
                alias="product",
            ),
            _table(
                "purchase",
                [
                    ("purchase_id", I, "purchase id"),
                    ("customer_id", I, "customer id"),
                    ("product_id", I, "product id"),
                    ("quantity", I, "quantity"),
                    ("year", I, "year"),
                ],
                pk="purchase_id",
                alias="purchase",
            ),
        ],
        [
            ForeignKey("purchase", "customer_id", "customer", "customer_id"),
            ForeignKey("purchase", "product_id", "product", "product_id"),
        ],
    )
    db = create_database(schema)
    db.insert(
        "customer",
        [
            (i, gen.person_name(rng), gen.word(rng, 2).capitalize(), rng.randint(2010, 2022))
            for i in range(1, 51)
        ],
    )
    categories = ["electronics", "books", "toys", "food", "garden"]
    db.insert(
        "product",
        [
            (i, gen.title(rng, 2), gen.skewed_choice(rng, categories),
             gen.bounded_float(rng, 2.0, 900.0, 2), rng.randint(0, 500))
            for i in range(1, 61)
        ],
    )
    db.insert(
        "purchase",
        [
            (i, rng.randint(1, 50), rng.randint(1, 60), rng.randint(1, 8),
             rng.randint(2018, 2023))
            for i in range(1, 181)
        ],
    )
    return db


def build_movies(rng: random.Random) -> Database:
    schema = _schema(
        "movies",
        [
            _table(
                "director",
                [
                    ("director_id", I, "director id"),
                    ("name", T, "name"),
                    ("nationality", T, "nationality"),
                ],
                pk="director_id",
                alias="director",
            ),
            _table(
                "movie",
                [
                    ("movie_id", I, "movie id"),
                    ("title", T, "title"),
                    ("director_id", I, "director id"),
                    ("year", I, "year"),
                    ("genre", T, "genre"),
                    ("rating", F, "rating"),
                    ("box_office", F, "box office"),
                ],
                pk="movie_id",
                alias="movie",
            ),
        ],
        [ForeignKey("movie", "director_id", "director", "director_id")],
    )
    db = create_database(schema)
    db.insert(
        "director",
        [
            (i, gen.person_name(rng), gen.skewed_choice(rng, ["American", "French", "Korean", "British"]))
            for i in range(1, 21)
        ],
    )
    genres = ["drama", "comedy", "action", "horror", "documentary"]
    db.insert(
        "movie",
        [
            (i, gen.title(rng, 3), rng.randint(1, 20), rng.randint(1980, 2023),
             gen.skewed_choice(rng, genres), gen.bounded_float(rng, 2.0, 9.8, 1),
             round(rng.uniform(0.1, 900.0), 1))
            for i in range(1, 91)
        ],
    )
    return db


def build_library(rng: random.Random) -> Database:
    schema = _schema(
        "library",
        [
            _table(
                "author",
                [
                    ("author_id", I, "author id"),
                    ("name", T, "name"),
                    ("birth_year", I, "birth year"),
                    ("country", T, "country"),
                ],
                pk="author_id",
                alias="author",
            ),
            _table(
                "book",
                [
                    ("book_id", I, "book id"),
                    ("title", T, "title"),
                    ("author_id", I, "author id"),
                    ("year", I, "publication year"),
                    ("pages", I, "pages"),
                    ("language", T, "language"),
                ],
                pk="book_id",
                alias="book",
            ),
            _table(
                "loan",
                [
                    ("loan_id", I, "loan id"),
                    ("book_id", I, "book id"),
                    ("borrower", T, "borrower"),
                    ("weeks", I, "loan weeks"),
                ],
                pk="loan_id",
                alias="loan",
            ),
        ],
        [
            ForeignKey("book", "author_id", "author", "author_id"),
            ForeignKey("loan", "book_id", "book", "book_id"),
        ],
    )
    db = create_database(schema)
    db.insert(
        "author",
        [
            (i, gen.person_name(rng), rng.randint(1890, 1995),
             gen.skewed_choice(rng, ["USA", "Ireland", "Nigeria", "India", "Chile"]))
            for i in range(1, 26)
        ],
    )
    db.insert(
        "book",
        [
            (i, gen.title(rng, 3), rng.randint(1, 25), rng.randint(1950, 2023),
             rng.randint(80, 1200), gen.skewed_choice(rng, ["English", "Spanish", "French"]))
            for i in range(1, 71)
        ],
    )
    db.insert(
        "loan",
        [
            (i, rng.randint(1, 70), gen.person_name(rng), rng.randint(1, 12))
            for i in range(1, 121)
        ],
    )
    return db


def build_hospital(rng: random.Random) -> Database:
    schema = _schema(
        "hospital",
        [
            _table(
                "physician",
                [
                    ("physician_id", I, "physician id"),
                    ("name", T, "name"),
                    ("specialty", T, "specialty"),
                    ("experience_years", I, "years of experience"),
                ],
                pk="physician_id",
                alias="physician",
            ),
            _table(
                "patient",
                [
                    ("patient_id", I, "patient id"),
                    ("name", T, "name"),
                    ("age", I, "age"),
                    ("city", T, "city"),
                ],
                pk="patient_id",
                alias="patient",
            ),
            _table(
                "appointment",
                [
                    ("appointment_id", I, "appointment id"),
                    ("physician_id", I, "physician id"),
                    ("patient_id", I, "patient id"),
                    ("year", I, "year"),
                    ("cost", F, "cost"),
                ],
                pk="appointment_id",
                alias="appointment",
            ),
        ],
        [
            ForeignKey("appointment", "physician_id", "physician", "physician_id"),
            ForeignKey("appointment", "patient_id", "patient", "patient_id"),
        ],
    )
    db = create_database(schema)
    specialties = ["cardiology", "oncology", "pediatrics", "surgery", "dermatology"]
    db.insert(
        "physician",
        [
            (i, gen.person_name(rng), gen.skewed_choice(rng, specialties), rng.randint(1, 35))
            for i in range(1, 21)
        ],
    )
    db.insert(
        "patient",
        [
            (i, gen.person_name(rng), rng.randint(1, 95), gen.word(rng, 2).capitalize())
            for i in range(1, 61)
        ],
    )
    db.insert(
        "appointment",
        [
            (i, rng.randint(1, 20), rng.randint(1, 60), rng.randint(2019, 2023),
             gen.bounded_float(rng, 40.0, 2500.0, 2))
            for i in range(1, 151)
        ],
    )
    return db


def build_restaurants(rng: random.Random) -> Database:
    schema = _schema(
        "restaurants",
        [
            _table(
                "city",
                [
                    ("city_id", I, "city id"),
                    ("city_name", T, "city name"),
                    ("population", I, "population"),
                ],
                pk="city_id",
                alias="city",
            ),
            _table(
                "restaurant",
                [
                    ("restaurant_id", I, "restaurant id"),
                    ("name", T, "name"),
                    ("city_id", I, "city id"),
                    ("cuisine", T, "cuisine"),
                    ("stars", F, "star rating"),
                    ("seats", I, "seats"),
                ],
                pk="restaurant_id",
                alias="restaurant",
            ),
        ],
        [ForeignKey("restaurant", "city_id", "city", "city_id")],
    )
    db = create_database(schema)
    db.insert(
        "city",
        [
            (i, gen.word(rng, 2).capitalize(), rng.randint(20_000, 4_000_000))
            for i in range(1, 11)
        ],
    )
    cuisines = ["italian", "thai", "mexican", "indian", "japanese"]
    db.insert(
        "restaurant",
        [
            (i, gen.title(rng, 2), rng.randint(1, 10), gen.skewed_choice(rng, cuisines),
             gen.bounded_float(rng, 1.0, 5.0, 1), rng.randint(10, 220))
            for i in range(1, 81)
        ],
    )
    return db


def build_orchestra(rng: random.Random) -> Database:
    schema = _schema(
        "orchestra",
        [
            _table(
                "conductor",
                [
                    ("conductor_id", I, "conductor id"),
                    ("name", T, "name"),
                    ("nationality", T, "nationality"),
                    ("year_of_work", I, "years of work"),
                ],
                pk="conductor_id",
                alias="conductor",
            ),
            _table(
                "orchestra",
                [
                    ("orchestra_id", I, "orchestra id"),
                    ("orchestra_name", T, "orchestra name"),
                    ("conductor_id", I, "conductor id"),
                    ("record_company", T, "record company"),
                    ("year_founded", I, "year founded"),
                ],
                pk="orchestra_id",
                alias="orchestra",
            ),
            _table(
                "performance",
                [
                    ("performance_id", I, "performance id"),
                    ("orchestra_id", I, "orchestra id"),
                    ("type", T, "performance type"),
                    ("attendance", I, "attendance"),
                    ("share", F, "audience share"),
                ],
                pk="performance_id",
                alias="performance",
            ),
        ],
        [
            ForeignKey("orchestra", "conductor_id", "conductor", "conductor_id"),
            ForeignKey("performance", "orchestra_id", "orchestra", "orchestra_id"),
        ],
    )
    db = create_database(schema)
    db.insert(
        "conductor",
        [
            (i, gen.person_name(rng),
             gen.skewed_choice(rng, ["Austrian", "Finnish", "American", "Venezuelan"]),
             rng.randint(3, 50))
            for i in range(1, 13)
        ],
    )
    companies = ["Decca", "Deutsche Grammophon", "Sony", "EMI"]
    db.insert(
        "orchestra",
        [
            (i, f"{gen.word(rng, 2).capitalize()} Philharmonic", rng.randint(1, 12),
             gen.skewed_choice(rng, companies), rng.randint(1850, 1995))
            for i in range(1, 17)
        ],
    )
    db.insert(
        "performance",
        [
            (i, rng.randint(1, 16), gen.skewed_choice(rng, ["symphony", "opera", "chamber"]),
             rng.randint(200, 3000), gen.bounded_float(rng, 0.5, 35.0, 1))
            for i in range(1, 61)
        ],
    )
    return db


#: The MiniSpider domain registry, in a stable order.
DOMAIN_BUILDERS: dict[str, Callable[[random.Random], Database]] = {
    "concert_singer": build_concert_singer,
    "pets": build_pets,
    "college": build_college,
    "flights": build_flights,
    "employees": build_employees,
    "shop": build_shop,
    "movies": build_movies,
    "library": build_library,
    "hospital": build_hospital,
    "restaurants": build_restaurants,
    "orchestra": build_orchestra,
}
