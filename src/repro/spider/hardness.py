"""Spider's query hardness classification, re-implemented over our SQL AST.

The four classes (Easy / Medium / Hard / Extra Hard) follow the component
counting of Spider's official ``evaluation.py``:

* **component1** — WHERE present, GROUP BY present, ORDER BY present, LIMIT
  present, one point per table beyond the first, one point per OR connector,
  one point per LIKE condition;
* **component2** — number of nested queries: subqueries inside WHERE/HAVING
  plus each set-operation arm;
* **others** — more than one aggregate anywhere, more than one select column,
  two or more WHERE conditions, two or more GROUP BY keys (one point each).

and the thresholds::

    easy    comp1 <= 1 and others == 0 and comp2 == 0
    medium  (others <= 2 and comp1 <= 1 and comp2 == 0)
            or (comp1 <= 2 and others < 2 and comp2 == 0)
    hard    (others > 2 and comp1 <= 2 and comp2 == 0)
            or (2 < comp1 <= 3 and others <= 2 and comp2 == 0)
            or (comp1 <= 1 and others == 0 and comp2 <= 1)
    extra   everything else

Table 2 of the paper reports hardness distributions under exactly this
scheme, which is why fidelity here matters more than elegance.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

from repro.sql import ast, parse

#: Hardness classes in increasing order of difficulty.
HARDNESS_LEVELS = ("easy", "medium", "hard", "extra")


def classify_hardness(query: ast.Query | str) -> str:
    """Classify one query (string or AST) into a Spider hardness class."""
    if isinstance(query, str):
        query = parse(query)
    comp1 = _count_component1(query)
    comp2 = _count_component2(query)
    others = _count_others(query)

    if comp1 <= 1 and others == 0 and comp2 == 0:
        return "easy"
    if (others <= 2 and comp1 <= 1 and comp2 == 0) or (
        comp1 <= 2 and others < 2 and comp2 == 0
    ):
        return "medium"
    if (
        (others > 2 and comp1 <= 2 and comp2 == 0)
        or (2 < comp1 <= 3 and others <= 2 and comp2 == 0)
        or (comp1 <= 1 and others == 0 and comp2 <= 1)
    ):
        return "hard"
    return "extra"


def hardness_distribution(queries: Iterable[ast.Query | str]) -> Counter:
    """Counter of hardness classes over a collection of queries."""
    counts: Counter = Counter({level: 0 for level in HARDNESS_LEVELS})
    for query in queries:
        counts[classify_hardness(query)] += 1
    return counts


# ---------------------------------------------------------------------------
# Component counting (main SELECT core only, as in Spider)
# ---------------------------------------------------------------------------


def _count_component1(query: ast.Query) -> int:
    select = query.select
    count = 0
    if select.where is not None:
        count += 1
    if select.group_by:
        count += 1
    if select.order_by:
        count += 1
    if select.limit is not None:
        count += 1
    n_tables = len(select.from_tables) + len(select.joins)
    if n_tables > 0:
        count += n_tables - 1
    count += _count_or_connectors(select.where) + _count_or_connectors(select.having)
    count += _count_like(select.where) + _count_like(select.having)
    return count


def _count_component2(query: ast.Query) -> int:
    nested = 0
    select = query.select
    for root in (select.where, select.having):
        if root is None:
            continue
        for node in root.walk():
            if isinstance(node, (ast.InSubquery, ast.ScalarSubquery, ast.Exists)):
                nested += 1
    if query.set_op is not None:
        nested += 1
    return nested


def _count_others(query: ast.Query) -> int:
    select = query.select
    count = 0
    if _count_aggregates(select) > 1:
        count += 1
    if len(select.items) > 1:
        count += 1
    if _count_conditions(select.where) >= 2:
        count += 1
    if len(select.group_by) >= 2:
        count += 1
    return count


def _count_aggregates(select: ast.Select) -> int:
    roots: list[ast.Node] = [item.expr for item in select.items]
    roots.extend(select.group_by)
    roots.extend(o.expr for o in select.order_by)
    if select.where is not None:
        roots.append(select.where)
    if select.having is not None:
        roots.append(select.having)
    total = 0
    for root in roots:
        for node in root.walk():
            if isinstance(node, (ast.InSubquery, ast.ScalarSubquery, ast.Exists)):
                continue  # Spider counts only the outer query's aggregates
            if (
                isinstance(node, ast.FuncCall)
                and node.name.lower() in ast.AGGREGATE_FUNCTIONS
            ):
                total += 1
    return total


def _count_conditions(where: ast.Expr | None) -> int:
    """Number of leaf predicates in a WHERE tree."""
    if where is None:
        return 0
    if isinstance(where, ast.BoolOp):
        return sum(_count_conditions(operand) for operand in where.operands)
    if isinstance(where, ast.Not):
        return _count_conditions(where.operand)
    return 1


def _count_or_connectors(expr: ast.Expr | None) -> int:
    if expr is None:
        return 0
    total = 0
    for node in expr.walk():
        if isinstance(node, ast.BoolOp) and node.op == "or":
            total += len(node.operands) - 1
    return total


def _count_like(expr: ast.Expr | None) -> int:
    if expr is None:
        return 0
    total = 0
    for node in expr.walk():
        if isinstance(node, ast.Comparison) and "like" in node.op:
            total += 1
    return total
