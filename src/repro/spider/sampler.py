"""Generic SQL query sampling over any enhanced schema.

MiniSpider (our Spider stand-in) needs thousands of diverse NL/SQL pairs
across many small databases.  The :class:`QuerySampler` draws queries from a
catalogue of structural shapes — projections, filters, aggregates, GROUP BY,
ORDER BY/LIMIT, joins, nested subqueries and set operations — with weights
tuned so the resulting hardness mix approximates the Spider training set
(≈22% easy / 33% medium / 20% hard / 25% extra).

Every sampled query is checked for executability against the database, and
filters draw their values from actual column content, so the corpus is
always runnable — the property Spider's curators enforced by hand.
"""

from __future__ import annotations

import random

from repro.engine.database import Database
from repro.schema.enhanced import EnhancedSchema
from repro.schema.model import Column, ColumnType
from repro.sql import parse, to_sql


class QuerySampler:
    """Samples executable SQL queries from one database."""

    def __init__(
        self, database: Database, enhanced: EnhancedSchema, rng: random.Random
    ) -> None:
        self.database = database
        self.enhanced = enhanced
        self.schema = enhanced.schema
        self.rng = rng
        self._shapes = [
            (self._shape_projection, 10),
            (self._shape_filter, 18),
            (self._shape_count, 8),
            (self._shape_multi_projection, 12),
            (self._shape_aggregate, 8),
            (self._shape_group_count, 8),
            (self._shape_having, 5),
            (self._shape_order_limit, 8),
            (self._shape_join_filter, 12),
            (self._shape_nested_avg, 5),
            (self._shape_nested_in, 5),
            (self._shape_set_op, 4),
            (self._shape_between, 4),
            (self._shape_two_conditions, 8),
            (self._shape_join_two_conditions, 10),
            (self._shape_nested_with_condition, 6),
        ]

    def sample(self, max_attempts: int = 30) -> str | None:
        """One executable SQL query, or None if sampling kept failing."""
        shapes, weights = zip(*self._shapes)
        for _ in range(max_attempts):
            shape = self.rng.choices(shapes, weights=weights, k=1)[0]
            try:
                sql = shape()
            except _Unsample:
                continue
            if sql is None:
                continue
            normalized = to_sql(parse(sql))
            if self.database.try_execute(normalized) is not None:
                return normalized
        return None

    def sample_many(self, n: int) -> list[str]:
        """Up to ``n`` distinct executable queries."""
        seen: set[str] = set()
        result: list[str] = []
        attempts = 0
        while len(result) < n and attempts < n * 20:
            attempts += 1
            sql = self.sample()
            if sql is None or sql in seen:
                continue
            seen.add(sql)
            result.append(sql)
        return result

    # -- shape helpers ----------------------------------------------------------

    def _table(self) -> str:
        candidates = [t.name for t in self.schema.tables if len(self.database.table(t.name)) > 0]
        if not candidates:
            raise _Unsample
        return self.rng.choice(candidates)

    def _column(self, table: str, numeric: bool = False, text: bool = False) -> Column:
        columns = self.schema.table(table).columns
        pool = [
            c
            for c in columns
            if (not numeric or c.type.is_numeric) and (not text or c.type is ColumnType.TEXT)
        ]
        if not pool:
            raise _Unsample
        return self.rng.choice(pool)

    def _value_literal(self, table: str, column: Column) -> str:
        values = self.database.table(table).distinct_values(column.name)
        if not values:
            raise _Unsample
        value = self.rng.choice(values)
        return _render(value)

    def _comparison(self, table: str) -> str:
        column = self._column(table)
        if column.type.is_numeric:
            op = self.rng.choice(["=", ">", "<", ">=", "<="])
        else:
            op = "="
        return f"{column.name} {op} {self._value_literal(table, column)}"

    def _agg(self, table: str) -> tuple[str, str]:
        numeric = self.enhanced.aggregatable_columns(table)
        if numeric and self.rng.random() < 0.7:
            column = self.rng.choice(numeric)
            func = self.rng.choice(["AVG", "SUM", "MAX", "MIN"])
            return func, column.name
        return "COUNT", "*"

    def _categorical(self, table: str) -> Column:
        pool = self.enhanced.categorical_columns(table)
        if not pool:
            raise _Unsample
        return self.rng.choice(pool)

    # -- shapes ------------------------------------------------------------------

    def _shape_projection(self) -> str:
        table = self._table()
        column = self._column(table)
        return f"SELECT {column.name} FROM {table}"

    def _shape_filter(self) -> str:
        table = self._table()
        column = self._column(table)
        return f"SELECT {column.name} FROM {table} WHERE {self._comparison(table)}"

    def _shape_count(self) -> str:
        table = self._table()
        if self.rng.random() < 0.5:
            return f"SELECT COUNT(*) FROM {table}"
        return f"SELECT COUNT(*) FROM {table} WHERE {self._comparison(table)}"

    def _shape_multi_projection(self) -> str:
        table = self._table()
        columns = self.schema.table(table).columns
        if len(columns) < 2:
            raise _Unsample
        a, b = self.rng.sample(list(columns), 2)
        return (
            f"SELECT {a.name}, {b.name} FROM {table} "
            f"WHERE {self._comparison(table)}"
        )

    def _shape_aggregate(self) -> str:
        table = self._table()
        func, column = self._agg(table)
        if self.rng.random() < 0.5:
            return f"SELECT {func}({column}) FROM {table}"
        return f"SELECT {func}({column}) FROM {table} WHERE {self._comparison(table)}"

    def _shape_group_count(self) -> str:
        table = self._table()
        key = self._categorical(table)
        return f"SELECT COUNT(*), {key.name} FROM {table} GROUP BY {key.name}"

    def _shape_having(self) -> str:
        table = self._table()
        key = self._categorical(table)
        n = self.rng.choice([1, 2, 3, 5, 10])
        return (
            f"SELECT {key.name} FROM {table} GROUP BY {key.name} "
            f"HAVING COUNT(*) > {n}"
        )

    def _shape_order_limit(self) -> str:
        table = self._table()
        column = self._column(table)
        order = self._column(table, numeric=True)
        direction = self.rng.choice(["ASC", "DESC"])
        k = self.rng.choice([1, 1, 3, 5, 10])
        return (
            f"SELECT {column.name} FROM {table} "
            f"ORDER BY {order.name} {direction} LIMIT {k}"
        )

    def _shape_join_filter(self) -> str:
        fks = list(self.schema.foreign_keys)
        self.rng.shuffle(fks)
        for fk in fks:
            if (
                len(self.database.table(fk.table)) == 0
                or len(self.database.table(fk.ref_table)) == 0
            ):
                continue
            left_col = self._column(fk.table)
            right_col = self._column(fk.ref_table)
            cond_table, alias = (fk.table, "T1") if self.rng.random() < 0.5 else (fk.ref_table, "T2")
            cond_col = self._column(cond_table)
            cond = (
                f"{alias}.{cond_col.name} "
                f"{'=' if not cond_col.type.is_numeric else self.rng.choice(['=', '>', '<'])} "
                f"{self._value_literal(cond_table, cond_col)}"
            )
            return (
                f"SELECT T1.{left_col.name}, T2.{right_col.name} "
                f"FROM {fk.table} AS T1 JOIN {fk.ref_table} AS T2 "
                f"ON T1.{fk.column} = T2.{fk.ref_column} WHERE {cond}"
            )
        raise _Unsample

    def _shape_nested_avg(self) -> str:
        table = self._table()
        numeric = self.enhanced.aggregatable_columns(table)
        if not numeric:
            raise _Unsample
        target = self.rng.choice(numeric)
        projected = self._column(table)
        return (
            f"SELECT {projected.name} FROM {table} "
            f"WHERE {target.name} > (SELECT AVG({target.name}) FROM {table})"
        )

    def _shape_nested_in(self) -> str:
        fks = list(self.schema.foreign_keys)
        self.rng.shuffle(fks)
        for fk in fks:
            if len(self.database.table(fk.ref_table)) == 0:
                continue
            projected = self._column(fk.table)
            try:
                cond = self._comparison(fk.ref_table)
            except _Unsample:
                continue
            return (
                f"SELECT {projected.name} FROM {fk.table} "
                f"WHERE {fk.column} IN (SELECT {fk.ref_column} FROM {fk.ref_table} "
                f"WHERE {cond})"
            )
        raise _Unsample

    def _shape_set_op(self) -> str:
        table = self._table()
        column = self._column(table)
        op = self.rng.choice(["UNION", "INTERSECT", "EXCEPT"])
        return (
            f"SELECT {column.name} FROM {table} WHERE {self._comparison(table)} "
            f"{op} SELECT {column.name} FROM {table} WHERE {self._comparison(table)}"
        )

    def _shape_between(self) -> str:
        table = self._table()
        column = self._column(table, numeric=True)
        values = [
            v
            for v in self.database.table(table).distinct_values(column.name)
            if isinstance(v, (int, float))
        ]
        if len(values) < 2:
            raise _Unsample
        lo, hi = sorted(self.rng.sample(values, 2))
        projected = self._column(table)
        return (
            f"SELECT {projected.name} FROM {table} "
            f"WHERE {column.name} BETWEEN {_render(lo)} AND {_render(hi)}"
        )

    def _shape_two_conditions(self) -> str:
        table = self._table()
        column = self._column(table)
        connector = self.rng.choice(["AND", "AND", "OR"])
        return (
            f"SELECT {column.name} FROM {table} "
            f"WHERE {self._comparison(table)} {connector} {self._comparison(table)}"
        )


    def _shape_join_two_conditions(self) -> str:
        """Join with two filters and two projections — Spider 'extra hard'."""
        fks = list(self.schema.foreign_keys)
        self.rng.shuffle(fks)
        for fk in fks:
            if (
                len(self.database.table(fk.table)) == 0
                or len(self.database.table(fk.ref_table)) == 0
            ):
                continue
            left_col = self._column(fk.table)
            right_col = self._column(fk.ref_table)
            cond1 = f"T1.{self._comparison(fk.table)}"
            cond2 = f"T2.{self._comparison(fk.ref_table)}"
            return (
                f"SELECT T1.{left_col.name}, T2.{right_col.name} "
                f"FROM {fk.table} AS T1 JOIN {fk.ref_table} AS T2 "
                f"ON T1.{fk.column} = T2.{fk.ref_column} "
                f"WHERE {cond1} AND {cond2}"
            )
        raise _Unsample

    def _shape_nested_with_condition(self) -> str:
        """Nested subquery plus an outer filter — Spider 'extra hard'."""
        table = self._table()
        numeric = self.enhanced.aggregatable_columns(table)
        if not numeric:
            raise _Unsample
        target = self.rng.choice(numeric)
        projected = self._column(table)
        extra = self._comparison(table)
        return (
            f"SELECT {projected.name} FROM {table} "
            f"WHERE {target.name} > (SELECT AVG({target.name}) FROM {table}) "
            f"AND {extra}"
        )


class _Unsample(Exception):
    """Internal: the chosen shape cannot be drawn from this schema."""


def _render(value) -> str:
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)
