"""SQL front-end: lexer, typed AST, parser and canonical printer.

Public surface::

    from repro.sql import parse, to_sql, ast

    query = parse("SELECT s.specobjid FROM specobj AS s WHERE s.subclass = 'STARBURST'")
    print(to_sql(query))
"""

from repro.sql import ast
from repro.sql.parser import parse, parse_expression
from repro.sql.printer import to_sql
from repro.sql.tokens import Token, TokenType, tokenize

__all__ = [
    "ast",
    "parse",
    "parse_expression",
    "to_sql",
    "tokenize",
    "Token",
    "TokenType",
]
