"""Typed abstract syntax tree for the benchmark's SQL dialect.

The node set mirrors what Spider queries (and the paper's SDSS math-operator
extension) require.  All nodes are frozen dataclasses: structural equality and
hashing come for free, which the template machinery and the NL-to-SQL beam
search both rely on.

The tree is intentionally *syntactic*: column references are unresolved
``(table_or_alias, column)`` pairs; resolution against a schema happens in
``repro.engine.executor`` and ``repro.semql.from_sql``.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field, fields


class Node:
    """Base class for all AST nodes; provides generic child traversal."""

    def children(self) -> Iterator["Node"]:
        """Yield every direct child node (descends into lists and tuples)."""
        for f in fields(self):  # type: ignore[arg-type]
            value = getattr(self, f.name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Node):
                        yield item

    def walk(self) -> Iterator["Node"]:
        """Yield this node and all descendants in pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr(Node):
    """Marker base class for expression nodes."""


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A possibly-qualified column reference such as ``T1.ra`` or ``z``."""

    table: str | None
    column: str

    def __str__(self) -> str:
        if self.table:
            return f"{self.table}.{self.column}"
        return self.column


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``T1.*`` in a select list or inside COUNT."""

    table: str | None = None


@dataclass(frozen=True)
class Literal(Expr):
    """A constant: int, float, str, bool or None (SQL NULL)."""

    value: int | float | str | bool | None


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Arithmetic between expressions: ``+ - * / %``.

    This is the node the paper's SemQL extension adds for SDSS queries like
    ``p.u - p.r < 2.22``.
    """

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnaryMinus(Expr):
    """Numeric negation, e.g. ``-1``."""

    operand: Expr


@dataclass(frozen=True)
class FuncCall(Expr):
    """An aggregate or scalar function call (COUNT, SUM, AVG, MIN, MAX, ABS)."""

    name: str
    args: tuple[Expr, ...]
    distinct: bool = False


#: Function names treated as aggregates by the executor and hardness metric.
AGGREGATE_FUNCTIONS = frozenset({"count", "sum", "avg", "min", "max"})


@dataclass(frozen=True)
class Comparison(Expr):
    """A binary predicate: ``= != <> < > <= >= like not like``."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Between(Expr):
    """``expr [NOT] BETWEEN low AND high``."""

    expr: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass(frozen=True)
class InList(Expr):
    """``expr [NOT] IN (v1, v2, ...)`` with literal values."""

    expr: Expr
    values: tuple[Expr, ...]
    negated: bool = False


@dataclass(frozen=True)
class InSubquery(Expr):
    """``expr [NOT] IN (SELECT ...)``."""

    expr: Expr
    query: "Query"
    negated: bool = False


@dataclass(frozen=True)
class ScalarSubquery(Expr):
    """A parenthesised subquery used as a scalar value in a comparison."""

    query: "Query"


@dataclass(frozen=True)
class Exists(Expr):
    """``[NOT] EXISTS (SELECT ...)``."""

    query: "Query"
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    expr: Expr
    negated: bool = False


@dataclass(frozen=True)
class Not(Expr):
    """Logical negation of a boolean expression."""

    operand: Expr


@dataclass(frozen=True)
class BoolOp(Expr):
    """N-ary AND / OR over boolean operands (flattened during parsing)."""

    op: str  # "and" | "or"
    operands: tuple[Expr, ...]


# ---------------------------------------------------------------------------
# Query structure
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TableRef(Node):
    """A base table in FROM, optionally aliased (``specobj AS s``)."""

    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        """The name this table is visible as inside the query."""
        return self.alias or self.name


@dataclass(frozen=True)
class SubqueryRef(Node):
    """A derived table in FROM (``FROM (SELECT ...) AS d``)."""

    query: "Query"
    alias: str | None = None

    @property
    def binding(self) -> str:
        return self.alias or "_subquery"


@dataclass(frozen=True)
class Join(Node):
    """An INNER JOIN clause with an ON condition (Spider uses only these)."""

    table: TableRef
    condition: Expr | None


@dataclass(frozen=True)
class SelectItem(Node):
    """One projection in the select list, optionally aliased."""

    expr: Expr
    alias: str | None = None


@dataclass(frozen=True)
class OrderItem(Node):
    """One ORDER BY key with direction."""

    expr: Expr
    desc: bool = False


@dataclass(frozen=True)
class Select(Node):
    """A single SELECT core (no set operation)."""

    items: tuple[SelectItem, ...]
    from_tables: tuple[TableRef | SubqueryRef, ...] = ()
    joins: tuple[Join, ...] = ()
    where: Expr | None = None
    group_by: tuple[Expr, ...] = ()
    having: Expr | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    distinct: bool = False

    def table_refs(self) -> list[TableRef]:
        """All base-table references in FROM and JOIN clauses, in order."""
        refs = [t for t in self.from_tables if isinstance(t, TableRef)]
        refs.extend(j.table for j in self.joins)
        return refs


@dataclass(frozen=True)
class Query(Node):
    """A full query: a SELECT core plus at most one set operation.

    Spider's grammar allows a single UNION / INTERSECT / EXCEPT combining two
    select cores, which is what the hardness classifier expects.
    """

    select: Select
    set_op: str | None = None  # "union" | "intersect" | "except"
    right: "Query | None" = None
    set_all: bool = False  # UNION ALL

    def selects(self) -> Iterator[Select]:
        """Yield every SELECT core in this query (left to right)."""
        yield self.select
        if self.right is not None:
            yield from self.right.selects()

    def subqueries(self) -> Iterator["Query"]:
        """Yield every nested query (IN/scalar/EXISTS/derived tables)."""
        for node in self.walk():
            if isinstance(node, (InSubquery, ScalarSubquery, Exists)):
                yield node.query
            elif isinstance(node, SubqueryRef):
                yield node.query


def column_refs(node: Node) -> list[ColumnRef]:
    """All :class:`ColumnRef` nodes under ``node`` in pre-order."""
    return [n for n in node.walk() if isinstance(n, ColumnRef)]


def literals(node: Node) -> list[Literal]:
    """All :class:`Literal` nodes under ``node`` in pre-order."""
    return [n for n in node.walk() if isinstance(n, Literal)]
