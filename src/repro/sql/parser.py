"""Recursive-descent parser for the benchmark's SQL dialect.

Produces the typed AST of :mod:`repro.sql.ast`.  The grammar is the Spider
query language (single optional set operation, INNER joins with ON, nested
subqueries in IN / comparisons / EXISTS / FROM) extended with arithmetic
column expressions, which the paper introduced to support SDSS astrophysics
queries such as ``p.u - p.r < 2.22``.

Entry point: :func:`parse` (or :func:`parse_expression` for bare expressions,
used by tests and the template machinery).
"""

from __future__ import annotations

from repro.errors import SqlSyntaxError
from repro.sql import ast
from repro.sql.tokens import Token, TokenType, tokenize

_COMPARISON_OPS = {"=", "!=", "<>", "<", ">", "<=", ">="}
_FUNCTION_KEYWORDS = {"count", "sum", "avg", "min", "max", "abs"}


def parse(sql: str) -> ast.Query:
    """Parse a complete SQL query string into a :class:`repro.sql.ast.Query`.

    Raises :class:`SqlSyntaxError` if the input is not a single valid query.
    """
    parser = _Parser(tokenize(sql))
    query = parser.parse_query()
    parser.accept_punct(";")
    parser.expect_eof()
    return query


def parse_expression(text: str) -> ast.Expr:
    """Parse a bare expression (no SELECT) — used for tests and templates."""
    parser = _Parser(tokenize(text))
    expr = parser.parse_expr()
    parser.expect_eof()
    return expr


class _Parser:
    """Stateful token cursor with one-token lookahead."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ----------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def peek(self, offset: int = 1) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def accept_keyword(self, *words: str) -> Token | None:
        if self.current.is_keyword(*words):
            return self.advance()
        return None

    def expect_keyword(self, word: str) -> Token:
        token = self.accept_keyword(word)
        if token is None:
            raise SqlSyntaxError(
                f"expected {word.upper()}, found {self.current.value!r}",
                position=self.current.position,
            )
        return token

    def accept_punct(self, punct: str) -> Token | None:
        if self.current.type is TokenType.PUNCT and self.current.value == punct:
            return self.advance()
        return None

    def expect_punct(self, punct: str) -> Token:
        token = self.accept_punct(punct)
        if token is None:
            raise SqlSyntaxError(
                f"expected {punct!r}, found {self.current.value!r}",
                position=self.current.position,
            )
        return token

    def accept_operator(self, *ops: str) -> Token | None:
        if self.current.type is TokenType.OPERATOR and self.current.value in ops:
            return self.advance()
        return None

    def expect_eof(self) -> None:
        if self.current.type is not TokenType.EOF:
            raise SqlSyntaxError(
                f"unexpected trailing input {self.current.value!r}",
                position=self.current.position,
            )

    # -- grammar -----------------------------------------------------------

    def parse_query(self) -> ast.Query:
        select = self.parse_select_core()
        set_token = self.accept_keyword("union", "intersect", "except")
        if set_token is None:
            return ast.Query(select=select)
        set_all = self.accept_keyword("all") is not None
        right = self.parse_query()
        return ast.Query(select=select, set_op=set_token.value, right=right, set_all=set_all)

    def parse_select_core(self) -> ast.Select:
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct") is not None
        items = [self.parse_select_item()]
        while self.accept_punct(","):
            items.append(self.parse_select_item())

        from_tables: list[ast.TableRef | ast.SubqueryRef] = []
        joins: list[ast.Join] = []
        if self.accept_keyword("from"):
            from_tables.append(self.parse_table_source())
            while True:
                if self.accept_punct(","):
                    from_tables.append(self.parse_table_source())
                    continue
                joined = self._accept_join()
                if joined is None:
                    break
                joins.append(joined)

        where = self.parse_expr() if self.accept_keyword("where") else None

        group_by: list[ast.Expr] = []
        having: ast.Expr | None = None
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by.append(self.parse_expr())
            while self.accept_punct(","):
                group_by.append(self.parse_expr())
            if self.accept_keyword("having"):
                having = self.parse_expr()

        order_by: list[ast.OrderItem] = []
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by.append(self.parse_order_item())
            while self.accept_punct(","):
                order_by.append(self.parse_order_item())

        limit: int | None = None
        if self.accept_keyword("limit"):
            token = self.advance()
            if token.type is not TokenType.NUMBER:
                raise SqlSyntaxError("LIMIT expects a number", position=token.position)
            limit = int(float(token.value))

        return ast.Select(
            items=tuple(items),
            from_tables=tuple(from_tables),
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
        )

    def _accept_join(self) -> ast.Join | None:
        # INNER / LEFT [OUTER] prefixes are accepted and all treated as inner
        # joins, matching Spider's evaluation convention.
        saved = self._pos
        self.accept_keyword("inner") or (
            self.accept_keyword("left") and (self.accept_keyword("outer") or True)
        )
        if self.accept_keyword("join") is None:
            self._pos = saved
            return None
        table = self.parse_table_ref()
        condition = self.parse_expr() if self.accept_keyword("on") else None
        return ast.Join(table=table, condition=condition)

    def parse_table_source(self) -> ast.TableRef | ast.SubqueryRef:
        if self.accept_punct("("):
            query = self.parse_query()
            self.expect_punct(")")
            alias = self._parse_alias()
            return ast.SubqueryRef(query=query, alias=alias)
        return self.parse_table_ref()

    def parse_table_ref(self) -> ast.TableRef:
        token = self.advance()
        if token.type is not TokenType.IDENT:
            raise SqlSyntaxError(
                f"expected table name, found {token.value!r}", position=token.position
            )
        alias = self._parse_alias()
        return ast.TableRef(name=token.value, alias=alias)

    def _parse_alias(self) -> str | None:
        if self.accept_keyword("as"):
            token = self.advance()
            if token.type is not TokenType.IDENT:
                raise SqlSyntaxError(
                    f"expected alias, found {token.value!r}", position=token.position
                )
            return token.value
        if self.current.type is TokenType.IDENT:
            return self.advance().value
        return None

    def parse_select_item(self) -> ast.SelectItem:
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("as"):
            token = self.advance()
            if token.type is not TokenType.IDENT:
                raise SqlSyntaxError(
                    f"expected alias, found {token.value!r}", position=token.position
                )
            alias = token.value
        return ast.SelectItem(expr=expr, alias=alias)

    def parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_expr()
        desc = False
        if self.accept_keyword("desc"):
            desc = True
        else:
            self.accept_keyword("asc")
        return ast.OrderItem(expr=expr, desc=desc)

    # -- expressions (precedence climbing) ----------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        operands = [self._parse_and()]
        while self.accept_keyword("or"):
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return ast.BoolOp(op="or", operands=tuple(operands))

    def _parse_and(self) -> ast.Expr:
        operands = [self._parse_not()]
        while self.accept_keyword("and"):
            operands.append(self._parse_not())
        if len(operands) == 1:
            return operands[0]
        return ast.BoolOp(op="and", operands=tuple(operands))

    def _parse_not(self) -> ast.Expr:
        if self.current.is_keyword("not") and not self.peek().is_keyword(
            "in", "like", "between", "exists"
        ):
            # NOT EXISTS is handled in primary; NOT IN/LIKE/BETWEEN postfix.
            if self.peek().is_keyword("exists"):
                pass
            else:
                self.advance()
                return ast.Not(operand=self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expr:
        left = self._parse_additive()
        negated = False
        if self.current.is_keyword("not") and self.peek().is_keyword(
            "in", "like", "between"
        ):
            self.advance()
            negated = True

        if self.accept_keyword("between"):
            low = self._parse_additive()
            self.expect_keyword("and")
            high = self._parse_additive()
            return ast.Between(expr=left, low=low, high=high, negated=negated)

        if self.accept_keyword("in"):
            self.expect_punct("(")
            if self.current.is_keyword("select"):
                query = self.parse_query()
                self.expect_punct(")")
                return ast.InSubquery(expr=left, query=query, negated=negated)
            values = [self._parse_additive()]
            while self.accept_punct(","):
                values.append(self._parse_additive())
            self.expect_punct(")")
            return ast.InList(expr=left, values=tuple(values), negated=negated)

        if self.accept_keyword("like"):
            right = self._parse_additive()
            op = "not like" if negated else "like"
            return ast.Comparison(op=op, left=left, right=right)

        if negated:
            raise SqlSyntaxError(
                "dangling NOT before predicate", position=self.current.position
            )

        if self.accept_keyword("is"):
            is_negated = self.accept_keyword("not") is not None
            self.expect_keyword("null")
            return ast.IsNull(expr=left, negated=is_negated)

        op_token = self.accept_operator(*_COMPARISON_OPS)
        if op_token is not None:
            op = "!=" if op_token.value == "<>" else op_token.value
            right = self._parse_additive()
            return ast.Comparison(op=op, left=left, right=right)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while True:
            op_token = self.accept_operator("+", "-")
            if op_token is None:
                return left
            right = self._parse_multiplicative()
            left = ast.BinaryOp(op=op_token.value, left=left, right=right)

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while True:
            # '*' is ambiguous with the star projection; it is only a
            # multiplication here because a left operand already exists.
            op_token = self.accept_operator("*", "/", "%")
            if op_token is None:
                return left
            right = self._parse_unary()
            left = ast.BinaryOp(op=op_token.value, left=left, right=right)

    def _parse_unary(self) -> ast.Expr:
        if self.accept_operator("-"):
            return ast.UnaryMinus(operand=self._parse_unary())
        self.accept_operator("+")
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self.current

        if token.type is TokenType.OPERATOR and token.value == "*":
            self.advance()
            return ast.Star()

        if token.type is TokenType.NUMBER:
            self.advance()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return ast.Literal(float(text))
            return ast.Literal(int(text))

        if token.type is TokenType.STRING:
            self.advance()
            return ast.Literal(token.value)

        if token.is_keyword("null"):
            self.advance()
            return ast.Literal(None)
        if token.is_keyword("true"):
            self.advance()
            return ast.Literal(True)
        if token.is_keyword("false"):
            self.advance()
            return ast.Literal(False)

        if token.is_keyword("not") and self.peek().is_keyword("exists"):
            self.advance()
            self.expect_keyword("exists")
            self.expect_punct("(")
            query = self.parse_query()
            self.expect_punct(")")
            return ast.Exists(query=query, negated=True)

        if token.is_keyword("exists"):
            self.advance()
            self.expect_punct("(")
            query = self.parse_query()
            self.expect_punct(")")
            return ast.Exists(query=query)

        if token.is_keyword(*_FUNCTION_KEYWORDS):
            return self._parse_function(token.value)

        if token.type is TokenType.IDENT:
            return self._parse_column_or_star()

        if self.accept_punct("("):
            if self.current.is_keyword("select"):
                query = self.parse_query()
                self.expect_punct(")")
                return ast.ScalarSubquery(query=query)
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr

        raise SqlSyntaxError(
            f"unexpected token {token.value!r}", position=token.position
        )

    def _parse_function(self, name: str) -> ast.Expr:
        self.advance()
        self.expect_punct("(")
        distinct = self.accept_keyword("distinct") is not None
        args: list[ast.Expr] = []
        if self.current.type is TokenType.OPERATOR and self.current.value == "*":
            self.advance()
            args.append(ast.Star())
        else:
            args.append(self.parse_expr())
            while self.accept_punct(","):
                args.append(self.parse_expr())
        self.expect_punct(")")
        return ast.FuncCall(name=name, args=tuple(args), distinct=distinct)

    def _parse_column_or_star(self) -> ast.Expr:
        first = self.advance()
        if self.accept_punct("."):
            if self.current.type is TokenType.OPERATOR and self.current.value == "*":
                self.advance()
                return ast.Star(table=first.value)
            second = self.advance()
            if second.type not in (TokenType.IDENT, TokenType.KEYWORD):
                raise SqlSyntaxError(
                    f"expected column after {first.value!r}.",
                    position=second.position,
                )
            return ast.ColumnRef(table=first.value, column=second.value)
        return ast.ColumnRef(table=None, column=first.value)
