"""Canonical SQL rendering of the AST.

``to_sql(parse(s))`` produces a normalised form of ``s``: upper-case
keywords, single spaces, canonical operator spellings.  Because the form is
canonical, string equality of printed ASTs is a cheap structural-equality
check used throughout the test-suite and by the NL-to-SQL systems when
de-duplicating beam candidates.
"""

from __future__ import annotations

from repro.sql import ast


def to_sql(node: ast.Node) -> str:
    """Render any AST node back to SQL text."""
    return _PRINTERS[type(node)](node)


def _print_query(query: ast.Query) -> str:
    text = _print_select(query.select)
    if query.set_op is not None and query.right is not None:
        op = query.set_op.upper()
        if query.set_all:
            op += " ALL"
        text = f"{text} {op} {to_sql(query.right)}"
    return text


def _print_select(select: ast.Select) -> str:
    parts = ["SELECT"]
    if select.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_print_select_item(item) for item in select.items))
    if select.from_tables:
        sources = ", ".join(to_sql(t) for t in select.from_tables)
        parts.append(f"FROM {sources}")
        for join in select.joins:
            parts.append(to_sql(join))
    if select.where is not None:
        parts.append(f"WHERE {to_sql(select.where)}")
    if select.group_by:
        keys = ", ".join(to_sql(e) for e in select.group_by)
        parts.append(f"GROUP BY {keys}")
    if select.having is not None:
        parts.append(f"HAVING {to_sql(select.having)}")
    if select.order_by:
        keys = ", ".join(_print_order_item(item) for item in select.order_by)
        parts.append(f"ORDER BY {keys}")
    if select.limit is not None:
        parts.append(f"LIMIT {select.limit}")
    return " ".join(parts)


def _print_select_item(item: ast.SelectItem) -> str:
    text = to_sql(item.expr)
    if item.alias:
        text = f"{text} AS {item.alias}"
    return text


def _print_order_item(item: ast.OrderItem) -> str:
    direction = "DESC" if item.desc else "ASC"
    return f"{to_sql(item.expr)} {direction}"


def _print_table_ref(ref: ast.TableRef) -> str:
    if ref.alias:
        return f"{ref.name} AS {ref.alias}"
    return ref.name


def _print_subquery_ref(ref: ast.SubqueryRef) -> str:
    text = f"({to_sql(ref.query)})"
    if ref.alias:
        text = f"{text} AS {ref.alias}"
    return text


def _print_join(join: ast.Join) -> str:
    text = f"JOIN {to_sql(join.table)}"
    if join.condition is not None:
        text = f"{text} ON {to_sql(join.condition)}"
    return text


def _print_column_ref(ref: ast.ColumnRef) -> str:
    if ref.table:
        return f"{ref.table}.{ref.column}"
    return ref.column


def _print_star(star: ast.Star) -> str:
    if star.table:
        return f"{star.table}.*"
    return "*"


def _print_literal(lit: ast.Literal) -> str:
    value = lit.value
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, float):
        # repr() keeps round-trip fidelity; strip a trailing '.0' for
        # readability of whole numbers.
        text = repr(value)
        return text
    return str(value)


_NEEDS_PARENS = (ast.BinaryOp, ast.BoolOp, ast.Comparison, ast.UnaryMinus)


def _operand(expr: ast.Expr) -> str:
    """Render an operand, parenthesising compound sub-expressions."""
    text = to_sql(expr)
    if isinstance(expr, _NEEDS_PARENS):
        return f"({text})"
    return text


def _print_binary_op(node: ast.BinaryOp) -> str:
    left = _operand(node.left) if isinstance(node.left, ast.BoolOp) else to_sql(node.left)
    right = to_sql(node.right)
    if isinstance(node.right, (ast.BinaryOp, ast.BoolOp)):
        right = f"({right})"
    if isinstance(node.left, ast.BinaryOp) and node.op in ("*", "/", "%"):
        left = f"({left})"
    return f"{left} {node.op} {right}"


def _print_unary_minus(node: ast.UnaryMinus) -> str:
    return f"-{_operand(node.operand)}"


def _print_func_call(node: ast.FuncCall) -> str:
    args = ", ".join(to_sql(a) for a in node.args)
    if node.distinct:
        args = f"DISTINCT {args}"
    return f"{node.name.upper()}({args})"


def _print_comparison(node: ast.Comparison) -> str:
    op = node.op.upper() if "like" in node.op else node.op
    return f"{to_sql(node.left)} {op} {to_sql(node.right)}"


def _print_between(node: ast.Between) -> str:
    word = "NOT BETWEEN" if node.negated else "BETWEEN"
    return f"{to_sql(node.expr)} {word} {to_sql(node.low)} AND {to_sql(node.high)}"


def _print_in_list(node: ast.InList) -> str:
    word = "NOT IN" if node.negated else "IN"
    values = ", ".join(to_sql(v) for v in node.values)
    return f"{to_sql(node.expr)} {word} ({values})"


def _print_in_subquery(node: ast.InSubquery) -> str:
    word = "NOT IN" if node.negated else "IN"
    return f"{to_sql(node.expr)} {word} ({to_sql(node.query)})"


def _print_scalar_subquery(node: ast.ScalarSubquery) -> str:
    return f"({to_sql(node.query)})"


def _print_exists(node: ast.Exists) -> str:
    word = "NOT EXISTS" if node.negated else "EXISTS"
    return f"{word} ({to_sql(node.query)})"


def _print_is_null(node: ast.IsNull) -> str:
    word = "IS NOT NULL" if node.negated else "IS NULL"
    return f"{to_sql(node.expr)} {word}"


def _print_not(node: ast.Not) -> str:
    return f"NOT {_operand(node.operand)}"


def _print_bool_op(node: ast.BoolOp) -> str:
    word = f" {node.op.upper()} "
    rendered = []
    for operand in node.operands:
        text = to_sql(operand)
        # Any nested BoolOp needs parentheses: a different op to survive a
        # re-parse with the conventional precedence, the same op because the
        # parser flattens unparenthesized chains — ``a AND (b AND c)`` would
        # otherwise come back as the three-operand ``a AND b AND c``.
        if isinstance(operand, ast.BoolOp):
            text = f"({text})"
        rendered.append(text)
    return word.join(rendered)


_PRINTERS = {
    ast.Query: _print_query,
    ast.Select: _print_select,
    ast.SelectItem: _print_select_item,
    ast.OrderItem: _print_order_item,
    ast.TableRef: _print_table_ref,
    ast.SubqueryRef: _print_subquery_ref,
    ast.Join: _print_join,
    ast.ColumnRef: _print_column_ref,
    ast.Star: _print_star,
    ast.Literal: _print_literal,
    ast.BinaryOp: _print_binary_op,
    ast.UnaryMinus: _print_unary_minus,
    ast.FuncCall: _print_func_call,
    ast.Comparison: _print_comparison,
    ast.Between: _print_between,
    ast.InList: _print_in_list,
    ast.InSubquery: _print_in_subquery,
    ast.ScalarSubquery: _print_scalar_subquery,
    ast.Exists: _print_exists,
    ast.IsNull: _print_is_null,
    ast.Not: _print_not,
    ast.BoolOp: _print_bool_op,
}
