"""Tokenizer for the Spider SQL dialect used throughout the benchmark.

The dialect covers everything Spider's queries use (SELECT/FROM/JOIN/WHERE/
GROUP BY/HAVING/ORDER BY/LIMIT, set operations, nested subqueries, aggregates,
IN/LIKE/BETWEEN) plus the arithmetic column expressions the paper added for
the SDSS astrophysics domain (e.g. ``p.u - p.r < 2.22``).

The lexer is a deliberately simple single-pass scanner: SQL queries in the
benchmark are short (tens of tokens), so clarity beats raw speed here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SqlSyntaxError


class TokenType(enum.Enum):
    """Lexical categories produced by :func:`tokenize`."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


#: Reserved words recognised case-insensitively.  Anything else that looks
#: like a word is an identifier.
KEYWORDS = frozenset(
    {
        "select", "distinct", "from", "where", "group", "by", "having",
        "order", "limit", "asc", "desc", "join", "inner", "left", "outer",
        "on", "as", "and", "or", "not", "in", "like", "between", "is",
        "null", "exists", "union", "intersect", "except", "all", "count",
        "sum", "avg", "min", "max", "abs", "true", "false",
    }
)

#: Multi-character operators, longest first so the scanner is greedy.
_OPERATORS = ("<>", "<=", ">=", "!=", "=", "<", ">", "+", "-", "*", "/", "%")

_PUNCT = {"(", ")", ",", ".", ";"}


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` is normalised: keywords are lower-cased, string literals have
    their quotes stripped and escapes resolved, numbers keep their textual
    form (the parser decides int vs float).
    """

    type: TokenType
    value: str
    position: int

    def is_keyword(self, *words: str) -> bool:
        """Return True if this token is one of the given keywords."""
        return self.type is TokenType.KEYWORD and self.value in words

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r}@{self.position})"


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` into a list of :class:`Token` ending with an EOF token.

    Raises :class:`SqlSyntaxError` on unterminated strings or characters the
    dialect does not use.
    """
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'" or ch == '"':
            value, i = _scan_string(text, i)
            tokens.append(Token(TokenType.STRING, value, i))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            start = i
            i = _scan_number(text, i)
            tokens.append(Token(TokenType.NUMBER, text[start:i], start))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, lowered, start))
            else:
                tokens.append(Token(TokenType.IDENT, word, start))
            continue
        matched = False
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token(TokenType.OPERATOR, op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r}", position=i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens


def _scan_string(text: str, start: int) -> tuple[str, int]:
    """Scan a quoted string starting at ``start``; return (value, next index).

    Both single and double quotes are accepted (Spider data uses both); a
    doubled quote character inside the literal is the escape for itself.
    """
    quote = text[start]
    i = start + 1
    parts: list[str] = []
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == quote:
            if i + 1 < n and text[i + 1] == quote:
                parts.append(quote)
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise SqlSyntaxError("unterminated string literal", position=start)


def _scan_number(text: str, start: int) -> int:
    """Scan a numeric literal (integer or decimal, optional exponent)."""
    i = start
    n = len(text)
    while i < n and text[i].isdigit():
        i += 1
    if i < n and text[i] == ".":
        i += 1
        while i < n and text[i].isdigit():
            i += 1
    if i < n and text[i] in "eE":
        j = i + 1
        if j < n and text[j] in "+-":
            j += 1
        if j < n and text[j].isdigit():
            i = j
            while i < n and text[i].isdigit():
                i += 1
    return i
