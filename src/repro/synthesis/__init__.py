"""The four-phase automatic training data generation pipeline (Figure 1)."""

from repro.synthesis.discriminator import Discriminator, DiscriminatorConfig
from repro.synthesis.generation import GenerationConfig, GenerationStats, SqlGenerator
from repro.synthesis.pipeline import (
    AugmentationPipeline,
    PipelineConfig,
    PipelineReport,
    augment_domain,
)
from repro.synthesis.seeding import SeedingResult, extract_templates
from repro.synthesis.translation import (
    SqlToNlTranslator,
    TranslationConfig,
    TranslationFailure,
    TranslationResult,
)

__all__ = [
    "AugmentationPipeline",
    "PipelineConfig",
    "PipelineReport",
    "augment_domain",
    "SqlGenerator",
    "GenerationConfig",
    "GenerationStats",
    "SqlToNlTranslator",
    "TranslationConfig",
    "TranslationFailure",
    "TranslationResult",
    "Discriminator",
    "DiscriminatorConfig",
    "extract_templates",
    "SeedingResult",
]
