"""Phase 4 — the Discriminative Phase (Section 3.3.4).

From the candidate questions of Phase 3, select the one or two whose
embeddings are closest to the geometric median of all candidates (Eq. 1):
the candidate maximising the summed cosine similarity to the others wins,
then the process repeats on the remainder.  Semantically corrupted outliers
— which share fewer content words with the consensus — are filtered out
this way, which is exactly the paper's motivation for the phase.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.embeddings import SentenceEmbedder, geometric_median_ranking


@dataclass
class DiscriminatorConfig:
    """Knobs of the candidate-selection phase (k ∈ {1, 2} in the paper)."""

    top_k: int = 2
    dedupe: bool = True


class Discriminator:
    """Selects the best candidate questions per SQL query."""

    def __init__(
        self,
        config: DiscriminatorConfig | None = None,
        embedder: SentenceEmbedder | None = None,
    ) -> None:
        self.config = config or DiscriminatorConfig()
        if self.config.top_k <= 0:
            raise ValueError("top_k must be positive")
        self.embedder = embedder or SentenceEmbedder()

    def select(self, candidates: list[str]) -> list[str]:
        """Top-k candidates by the Eq. 1 objective (order: best first)."""
        pool = list(dict.fromkeys(candidates)) if self.config.dedupe else list(candidates)
        if len(pool) <= self.config.top_k:
            return pool
        matrix = self.embedder.embed_all(pool)
        ranking = geometric_median_ranking(matrix)
        return [pool[i] for i in ranking[: self.config.top_k]]
