"""Phase 2 — SQL Query Generation (Section 3.3.2, Algorithm 1).

Templates from the seeding phase are instantiated against the target
database: every placeholder position is resolved through a hash map exactly
as in Algorithm 1 (``Tables``, ``Columns``, ``Values``), with new leaves
drawn by constrained sampling functions over the *enhanced schema*:

* ``sample_table`` — any populated table;
* ``sample_column`` — respects the slot's context: SUM/AVG slots only draw
  aggregatable numeric columns, GROUP BY slots only categorical columns,
  math-expression slots only commensurable columns from one math group,
  range-comparison slots only numeric columns, LIKE slots only text columns;
* ``sample_value`` — draws from the actual database content of the sampled
  column (numbers may interpolate within the observed range).

Instantiated trees are lowered to SQL and must execute; with
``require_nonempty`` they must also return rows.  Failures are retried up to
``max_attempts`` times before the template instance is abandoned — the
mechanism behind the paper's observation that complex templates yield fewer
(and easier) synthetic queries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.analysis import analyze, rejects_execution
from repro.engine.database import Database
from repro.errors import GenerationError, ReproError
from repro.nlgen.lexicon import render_value
from repro.schema.enhanced import EnhancedSchema
from repro.schema.model import Column, ColumnType
from repro.semql import nodes as sq
from repro.semql.templates import Template
from repro.semql.to_sql import semql_to_sql

_RANGE_OPS = {">", "<", ">=", "<=", "between"}


@dataclass
class GenerationConfig:
    """Knobs of the SQL generation phase."""

    queries_per_template: int = 20
    max_attempts: int = 30
    require_nonempty: bool = True
    max_result_rows: int | None = None  # skip queries flooding millions of rows
    #: Run the static analyzer on each lowered candidate and skip execution
    #: when it is provably doomed (would error, or — under
    #: ``require_nonempty`` — provably returns no rows).  The filter is
    #: sound, so it never changes *which* queries are generated for a fixed
    #: seed; it only avoids wasted executions.
    static_prefilter: bool = True


@dataclass
class GenerationStats:
    """Counters of one generation run (how the oracle budget was spent)."""

    candidates: int = 0  #: successfully lowered template instantiations
    static_rejected: int = 0  #: skipped by the analyzer without executing
    executed: int = 0  #: candidates sent to the execution oracle
    runtime_rejected: int = 0  #: executions that failed or were filtered
    accepted: int = 0  #: candidates that survived all checks

    def merge(self, other: "GenerationStats") -> None:
        self.candidates += other.candidates
        self.static_rejected += other.static_rejected
        self.executed += other.executed
        self.runtime_rejected += other.runtime_rejected
        self.accepted += other.accepted


class SqlGenerator:
    """Instantiates query templates against one database (Algorithm 1)."""

    def __init__(
        self,
        database: Database,
        enhanced: EnhancedSchema,
        rng: random.Random,
        config: GenerationConfig | None = None,
    ) -> None:
        self.database = database
        self.enhanced = enhanced
        self.schema = enhanced.schema
        self.rng = rng
        self.config = config or GenerationConfig()
        self.stats = GenerationStats()

    # -- public API ---------------------------------------------------------------

    def generate(self, templates: list[Template]) -> list[str]:
        """Generate de-duplicated executable SQL from all templates."""
        seen: set[str] = set()
        generated: list[str] = []
        for template in templates:
            for _ in range(self.config.queries_per_template):
                sql = self.instantiate(template)
                if sql is None or sql in seen:
                    continue
                seen.add(sql)
                generated.append(sql)
        return generated

    def instantiate(self, template: Template) -> str | None:
        """One executable SQL query from ``template`` (or None on failure)."""
        for _ in range(self.config.max_attempts):
            try:
                tree = self._fill(template.tree)
                sql = semql_to_sql(tree, self.schema)
            except (GenerationError, ReproError):
                continue
            self.stats.candidates += 1
            if self.config.static_prefilter and self._statically_doomed(sql):
                self.stats.static_rejected += 1
                continue
            self.stats.executed += 1
            result = self.database.try_execute(sql)
            if result is None:
                self.stats.runtime_rejected += 1
                continue
            if self.config.require_nonempty and not result.rows:
                self.stats.runtime_rejected += 1
                continue
            if (
                self.config.max_result_rows is not None
                and len(result.rows) > self.config.max_result_rows
            ):
                self.stats.runtime_rejected += 1
                continue
            self.stats.accepted += 1
            return sql
        return None

    def _statically_doomed(self, sql: str) -> bool:
        """Whether the analyzer proves the oracle would reject ``sql``.

        Only *sound* verdicts count: execution-fatal rules, or a statically
        empty result when ``require_nonempty`` demands rows.  Sampling and
        retries are untouched — the candidate stream for a fixed seed is
        identical with the filter on or off; doomed candidates merely skip
        the execution step.
        """
        diagnostics = analyze(sql, self.schema, self.enhanced)
        return rejects_execution(
            diagnostics, require_nonempty=self.config.require_nonempty
        )

    # -- Algorithm 1 ---------------------------------------------------------------

    def _fill(self, tree: sq.Z) -> sq.Z:
        """Resolve every slot through the position hash maps (Algorithm 1)."""
        tables: dict[int, str] = {}
        columns: dict[int, sq.ColumnLeaf] = {}
        values: dict[int, sq.ValueLeaf] = {}

        def resolve_table(slot) -> sq.TableLeaf:
            if isinstance(slot, sq.TableLeaf):
                return slot
            if slot.position not in tables:
                tables[slot.position] = self._sample_table()
            return sq.TableLeaf(tables[slot.position])

        def resolve_column(slot, context: str) -> sq.ColumnLeaf:
            if isinstance(slot, sq.ColumnLeaf):
                return slot
            if slot.position not in columns:
                table = resolve_table(slot.table)
                taken = {
                    leaf.name
                    for leaf in columns.values()
                    if isinstance(leaf.table, sq.TableLeaf)
                    and leaf.table.name == table.name
                }
                column = self._sample_column(table.name, context, avoid=taken)
                columns[slot.position] = sq.ColumnLeaf(table=table, name=column.name)
            return columns[slot.position]

        def resolve_math(expr: sq.MathExpr) -> sq.MathExpr:
            left_table = resolve_table(
                expr.left.table if isinstance(expr.left, (sq.ColumnSlot, sq.ColumnLeaf)) else None
            )
            groups = self.enhanced.math_groups(left_table.name)
            if not groups:
                raise GenerationError(f"no math groups on table {left_table.name!r}")
            group = self.rng.choice(groups)
            pool = self.enhanced.math_columns(left_table.name, group)
            if len(pool) < 2:
                raise GenerationError(f"math group {group!r} too small")
            first, second = self.rng.sample(pool, 2)

            def math_leaf(slot, name: str) -> sq.ColumnLeaf:
                if isinstance(slot, sq.ColumnLeaf):
                    return slot
                if slot.position not in columns:
                    columns[slot.position] = sq.ColumnLeaf(table=left_table, name=name)
                return columns[slot.position]

            return sq.MathExpr(
                op=expr.op,
                left=math_leaf(expr.left, first.name),
                right=math_leaf(expr.right, second.name),
            )

        def resolve_attribute(a: sq.A, context: str | None = None) -> sq.A:
            if isinstance(a.column, sq.StarLeaf):
                return a
            if isinstance(a.column, sq.MathExpr):
                return sq.A(agg=a.agg, column=resolve_math(a.column), distinct=a.distinct)
            ctx = context or _agg_context(a.agg)
            return sq.A(
                agg=a.agg,
                column=resolve_column(a.column, ctx),
                distinct=a.distinct,
            )

        def resolve_value(slot, attribute: sq.A, op: str) -> sq.ValueLeaf:
            if isinstance(slot, sq.ValueLeaf):
                return slot
            if slot.position not in values:
                values[slot.position] = self._sample_value(attribute, op)
            return values[slot.position]

        def resolve_filter(node):
            if isinstance(node, sq.FilterNode):
                return sq.FilterNode(
                    op=node.op,
                    left=resolve_filter(node.left),
                    right=resolve_filter(node.right),
                )
            condition: sq.Condition = node
            context = _filter_context(condition.op, condition.attribute.agg)
            # Subquery first: in ``z > (SELECT AVG(z) ...)`` the inner AVG
            # slot shares the outer column's position and carries the
            # stricter (aggregatable) constraint — it must claim the hash
            # map entry before the outer range context does.
            subquery = None
            if condition.subquery is not None:
                subquery = resolve_r(condition.subquery)
            attribute = resolve_attribute(condition.attribute, context)
            value = value2 = None
            if condition.value is not None:
                value = resolve_value(condition.value, attribute, condition.op)
            if condition.value2 is not None:
                value2 = resolve_value(condition.value2, attribute, condition.op)
                value, value2 = _ordered_pair(value, value2)
            return sq.Condition(
                op=condition.op,
                attribute=attribute,
                value=value,
                value2=value2,
                subquery=subquery,
            )

        def resolve_r(r: sq.R) -> sq.R:
            from_table = None
            if r.from_table is not None:
                from_table = resolve_table(r.from_table)
            # Constrained slots first: a column position shared between a
            # plain projection and a GROUP BY key (or a typed filter) must
            # be resolved under the *stricter* context, otherwise Algorithm
            # 1's hash map would lock in an incompatible column.
            group = None
            if r.select.group is not None:
                group = tuple(
                    resolve_column(c, "group") if isinstance(c, sq.ColumnSlot) else c
                    for c in r.select.group
                )
            attributes = tuple(resolve_attribute(a) for a in r.select.attributes)
            filter_node = resolve_filter(r.filter) if r.filter is not None else None
            order = None
            if r.order is not None:
                order = sq.Order(
                    direction=r.order.direction,
                    attribute=resolve_attribute(r.order.attribute, "order"),
                    limit=r.order.limit,
                )
            select = sq.SemSelect(
                attributes=attributes, distinct=r.select.distinct, group=group
            )
            return sq.R(
                select=select, filter=filter_node, order=order, from_table=from_table
            )

        left = resolve_r(tree.left)
        right = resolve_r(tree.right) if tree.right is not None else None
        return sq.Z(left=left, set_op=tree.set_op, right=right)

    # -- sampling functions (the SampleTable/SampleColumn/SampleValue of
    # -- Algorithm 1) ---------------------------------------------------------

    def _sample_table(self) -> str:
        populated = [
            t.name for t in self.schema.tables if len(self.database.table(t.name)) > 0
        ]
        if not populated:
            raise GenerationError("no populated tables to sample from")
        # Weight by data volume so synthetic queries concentrate on the
        # content-bearing tables rather than tiny lookup tables.
        weights = [len(self.database.table(name)) ** 0.5 for name in populated]
        return self.rng.choices(populated, weights=weights, k=1)[0]

    def _sample_column(
        self, table: str, context: str, avoid: set[str] | None = None
    ) -> Column:
        pool = column_pool(self.enhanced, table, context)
        if not pool:
            raise GenerationError(f"no {context!r}-compatible column in {table!r}")
        if avoid:
            fresh = [c for c in pool if c.name not in avoid]
            if fresh:
                pool = fresh
        return self.rng.choice(pool)

    def _sample_value(self, attribute: sq.A, op: str) -> sq.ValueLeaf:
        column = attribute.column
        if isinstance(column, sq.MathExpr):
            return self._sample_math_value(column)
        if not isinstance(column, sq.ColumnLeaf) or not isinstance(
            column.table, sq.TableLeaf
        ):
            raise GenerationError("cannot sample a value without a concrete column")
        table = self.database.table(column.table.name)
        pool = table.distinct_values(column.name)
        if not pool:
            raise GenerationError(
                f"no values in {column.table.name}.{column.name}"
            )
        if op == "like":
            text = str(self.rng.choice([v for v in pool if isinstance(v, str)] or pool))
            if len(text) > 4:
                start = self.rng.randrange(0, max(1, len(text) - 3))
                text = text[start : start + self.rng.randint(3, 6)]
            return sq.ValueLeaf(value=f"%{text}%")
        value = self.rng.choice(pool)
        if op in _RANGE_OPS and isinstance(value, (int, float)) and not isinstance(value, bool):
            numbers = [v for v in pool if isinstance(v, (int, float))]
            low, high = min(numbers), max(numbers)
            if isinstance(value, float):
                value = round(self.rng.uniform(low, high), 3)
            elif low < high:
                value = self.rng.randint(int(low), int(high))
        return sq.ValueLeaf(value=value)

    def _sample_math_value(self, expr: sq.MathExpr) -> sq.ValueLeaf:
        """A plausible threshold for ``col1 op col2`` comparisons, drawn from
        the observed distribution of the expression over the data."""
        left, right = expr.left, expr.right
        if not (isinstance(left, sq.ColumnLeaf) and isinstance(right, sq.ColumnLeaf)):
            raise GenerationError("math expression not concrete")
        table = self.database.table(left.table.name)
        li = table.column_index(left.name)
        ri = table.column_index(right.name)
        samples = []
        for row in table.rows[:500]:
            a, b = row[li], row[ri]
            if a is None or b is None:
                continue
            samples.append(_apply(expr.op, a, b))
        if not samples:
            raise GenerationError("no data to derive a math threshold from")
        return sq.ValueLeaf(value=round(self.rng.choice(samples), 3))


def column_pool(enhanced: EnhancedSchema, table: str, context: str) -> list[Column]:
    """Columns of ``table`` compatible with a slot ``context``.

    Shared between random instantiation (Phase 2) and the link-guided
    instantiation inside the NL-to-SQL systems.
    """
    schema = enhanced.schema
    if context == "group":
        return enhanced.categorical_columns(table)
    if context in ("sum", "avg"):
        return enhanced.aggregatable_columns(table)
    if context in ("max", "min", "order", "range"):
        return [
            c
            for c in schema.table(table).columns
            if c.type.is_numeric or c.type is ColumnType.DATE
        ]
    if context == "like":
        return [c for c in schema.table(table).columns if c.type is ColumnType.TEXT]
    if context == "equality":
        categorical = enhanced.categorical_columns(table)
        return categorical or enhanced.projectable_columns(table)
    return enhanced.projectable_columns(table)


def _agg_context(agg: str) -> str:
    if agg in ("sum", "avg"):
        return agg
    if agg in ("max", "min"):
        return agg
    return "projection"


def _filter_context(op: str, agg: str) -> str:
    if agg in ("sum", "avg", "max", "min", "count"):
        return _agg_context(agg) if agg != "count" else "projection"
    if op in _RANGE_OPS:
        return "range"
    if op in ("like", "not_like"):
        return "like"
    if op in ("=", "!="):
        return "equality"
    return "projection"


def _ordered_pair(a: sq.ValueLeaf, b: sq.ValueLeaf):
    av, bv = a.value, b.value
    if isinstance(av, (int, float)) and isinstance(bv, (int, float)):
        if av > bv:
            return sq.ValueLeaf(bv), sq.ValueLeaf(av)
    return a, b


def _apply(op: str, a, b):
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if b == 0:
        return 0.0
    return a / b


def describe_value(value: sq.ValueLeaf) -> str:
    """Debug helper: render a value leaf the way questions will see it."""
    return render_value(value.value)
