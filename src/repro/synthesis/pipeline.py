"""The end-to-end automatic training data generation pipeline (Figure 1).

Chains the four phases — Seeding → SQL Generation → SQL-to-NL Translation →
Discrimination — to turn a domain's small expert seed set into a large
synthetic training split ("Synth" in Table 2).  The pipeline also works for
MiniSpider databases (the "Synth Spider" control rows of Table 5) by wrapping
them as ad-hoc domains.

Resilience: the translation phase retries transient model faults
(:mod:`repro.synthesis.translation`); queries that fail *permanently* are
routed to a dead-letter record with a structured reason instead of aborting
the run, and the run still produces a (smaller) valid split.  Optional
phase-level **checkpoints** persist the expensive intermediate artifacts
(seeding + generated SQL; translated outcomes) through an
:class:`~repro.runtime.ArtifactCache`, so a crashed run resumes from the
last completed phase instead of restarting — with byte-identical output,
because phases 3+4 derive all randomness from the SQL text, never from the
phase-2 RNG's position.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field

from repro.datasets.records import BenchmarkDomain, NLSQLPair, Split
from repro.llm.base import SqlToNlModel
from repro.obs import get_tracer
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.clock import SYSTEM_CLOCK
from repro.resilience.deadletter import DeadLetter, ResilienceStats
from repro.runtime.cache import ArtifactCache
from repro.synthesis.discriminator import Discriminator, DiscriminatorConfig
from repro.synthesis.generation import GenerationConfig, GenerationStats, SqlGenerator
from repro.synthesis.seeding import SeedingResult, extract_templates
from repro.synthesis.translation import SqlToNlTranslator, TranslationConfig


@dataclass
class PipelineConfig:
    """All knobs of the end-to-end pipeline in one place."""

    target_queries: int = 1000
    seed: int = 1234
    generation: GenerationConfig = field(default_factory=GenerationConfig)
    translation: TranslationConfig = field(default_factory=TranslationConfig)
    discriminator: DiscriminatorConfig = field(default_factory=DiscriminatorConfig)


@dataclass
class PipelineReport:
    """Artifacts and statistics of one pipeline run."""

    seeding: SeedingResult
    n_generated_sql: int
    n_pairs: int
    split: Split
    #: How the generation phase spent its execution-oracle budget, including
    #: candidates the static analyzer rejected without executing.
    generation: GenerationStats | None = None
    #: Queries that failed permanently, with structured reasons.
    dead_letters: list[DeadLetter] = field(default_factory=list)
    #: Retry/recovery accounting for the translation phase.
    resilience: ResilienceStats = field(default_factory=ResilienceStats)
    #: Phase -> "stored" | "resumed" (present only when checkpointing is on).
    checkpoints: dict[str, str] = field(default_factory=dict)

    @property
    def n_dead_lettered(self) -> int:
        return len(self.dead_letters)


@dataclass
class _QueryOutcome:
    """Picklable phases-3+4 result for one query (crosses executor.map)."""

    pairs: list[NLSQLPair]
    attempts: int
    recovered: dict[str, int]
    slept_s: float
    dead_letter: DeadLetter | None


class AugmentationPipeline:
    """Figure 1: automatic training data generation for one domain.

    Randomness and parallelism are injectable: callers may pass an explicit
    ``rng`` (instead of the pipeline seeding ``random.Random(config.seed)``
    itself) and an ``executor`` whose ``map`` fans the per-query translation
    and selection phases out — ``executor.map`` preserves input order and
    every query is translated independently (the model derives its RNG from
    the SQL text), so any executor yields the same split as the serial path.

    ``breaker``/``clock`` guard and pace the translation phase's retries
    (see :mod:`repro.resilience`); ``checkpoints`` enables phase-level
    checkpoint/resume through an artifact cache.
    """

    def __init__(
        self,
        domain: BenchmarkDomain,
        model: SqlToNlModel | None = None,
        config: PipelineConfig | None = None,
        rng: random.Random | None = None,
        executor=None,
        breaker: CircuitBreaker | None = None,
        clock=SYSTEM_CLOCK,
        checkpoints: ArtifactCache | None = None,
    ) -> None:
        self.domain = domain
        self.config = config or PipelineConfig()
        self.translator = SqlToNlTranslator(
            domain,
            model=model,
            config=self.config.translation,
            breaker=breaker,
            clock=clock,
        )
        self.discriminator = Discriminator(self.config.discriminator)
        self._rng = rng
        self._executor = executor
        self._checkpoints = checkpoints

    def __getstate__(self):
        # Executors cannot cross process boundaries; drop them so the
        # pipeline itself stays picklable for executor.map workers.  (The
        # translator drops its own breaker/clock the same way.)
        state = self.__dict__.copy()
        state["_executor"] = None
        return state

    def run(self, rng: random.Random | None = None, executor=None) -> PipelineReport:
        """Execute all four phases and return the synthetic split.

        ``rng``/``executor`` override the constructor-injected ones; with
        neither injected, each run uses a fresh ``random.Random(config.seed)``
        and runs serially (the legacy behaviour).
        """
        if rng is None:
            rng = self._rng if self._rng is not None else random.Random(self.config.seed)
        if executor is None:
            executor = self._executor
        checkpoint_log: dict[str, str] = {}
        tracer = get_tracer()

        with tracer.span(
            "pipeline.run",
            domain=self.domain.name,
            target=self.config.target_queries,
        ):
            # Phases 1+2 — Seeding, then SQL generation (Algorithm 1),
            # round-robin over templates until the target count is reached or
            # templates dry up.  Checkpointed as one unit: the phase-2 RNG
            # stream ends here, so resuming past it is split-preserving.
            resumed = self._checkpoint_load("generate", checkpoint_log)
            if resumed is not None:
                seeding, queries, generation_stats = resumed
                with tracer.span("pipeline.generation", resumed=True) as span:
                    span.set_attr("n_queries", len(queries))
            else:
                with tracer.span("pipeline.seeding") as span:
                    seeding = extract_templates(
                        self.domain.seed.pairs, self.domain.database.schema
                    )
                    span.set_attr("n_templates", len(seeding.templates))
                with tracer.span("pipeline.generation", resumed=False) as span:
                    generator = SqlGenerator(
                        self.domain.database,
                        self.domain.enhanced,
                        rng,
                        config=self.config.generation,
                    )
                    queries = self._generate_queries(generator, seeding)
                    generation_stats = generator.stats
                    span.set_attr("n_queries", len(queries))
                self._checkpoint_store(
                    "generate", (seeding, queries, generation_stats), checkpoint_log
                )

            # Phases 3+4 — translate and select, independently per query.
            # Permanent translation failures dead-letter the query; the run
            # continues and still produces a valid (smaller) split.
            resumed = self._checkpoint_load("translate", checkpoint_log)
            with tracer.span(
                "pipeline.translate", resumed=resumed is not None
            ) as span:
                if resumed is not None:
                    outcomes = resumed
                else:
                    if executor is None:
                        outcomes = [self._pairs_for(sql) for sql in queries]
                    else:
                        outcomes = list(executor.map(self._pairs_for, queries))
                    self._checkpoint_store("translate", outcomes, checkpoint_log)
                span.set_attr("n_queries", len(outcomes))
                span.set_attr(
                    "dead_letters",
                    sum(1 for o in outcomes if o.dead_letter is not None),
                )

        pairs: list[NLSQLPair] = []
        dead_letters: list[DeadLetter] = []
        resilience = ResilienceStats()
        for outcome in outcomes:
            pairs.extend(outcome.pairs)
            if outcome.dead_letter is not None:
                dead_letters.append(outcome.dead_letter)
            else:
                resilience.observe(outcome.attempts, outcome.recovered, outcome.slept_s)

        split = Split(name=f"{self.domain.name}-synth", pairs=pairs)
        self.domain.synth = split
        return PipelineReport(
            seeding=seeding,
            n_generated_sql=len(queries),
            n_pairs=len(pairs),
            split=split,
            generation=generation_stats,
            dead_letters=dead_letters,
            resilience=resilience,
            checkpoints=checkpoint_log,
        )

    def _pairs_for(self, sql: str) -> _QueryOutcome:
        """Phases 3+4 for one generated query: translate, then select."""
        tracer = get_tracer()
        with tracer.span("pipeline.query") as span:
            result = self.translator.translate_with_recovery(sql)
            span.set_attr("attempts", result.attempts)
            if result.candidates is None:
                span.set_attr("outcome", "dead-letter")
                return _QueryOutcome(
                    pairs=[],
                    attempts=result.attempts,
                    recovered=result.recovered,
                    slept_s=result.slept_s,
                    dead_letter=result.dead_letter,
                )
            best = self.discriminator.select(result.candidates)
            span.set_attr("outcome", "ok")
            span.set_attr("n_pairs", len(best))
        return _QueryOutcome(
            pairs=[
                NLSQLPair(
                    question=question,
                    sql=sql,
                    db_id=self.domain.name,
                    source="synth",
                )
                for question in best
            ],
            attempts=result.attempts,
            recovered=result.recovered,
            slept_s=result.slept_s,
            dead_letter=None,
        )

    # -- checkpointing --------------------------------------------------------

    def _checkpoint_key(self, phase: str) -> str:
        blob = json.dumps(
            {
                "pipeline-checkpoint": 1,
                "domain": self.domain.name,
                "seed": self.config.seed,
                "target": self.config.target_queries,
                "n_candidates": self.config.translation.n_candidates,
                "phase": phase,
            },
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def _checkpoint_load(self, phase: str, log: dict[str, str]):
        if self._checkpoints is None:
            return None
        hit, payload = self._checkpoints.load(self._checkpoint_key(phase))
        if hit:
            log[phase] = "resumed"
            return payload
        return None

    def _checkpoint_store(self, phase: str, payload, log: dict[str, str]) -> None:
        if self._checkpoints is None:
            return
        self._checkpoints.store(self._checkpoint_key(phase), f"pipeline:{phase}", payload)
        log[phase] = "stored"

    def _generate_queries(
        self, generator: SqlGenerator, seeding: SeedingResult
    ) -> list[str]:
        """Round-robin template instantiation up to the target count."""
        target = self.config.target_queries
        seen: set[str] = set()
        queries: list[str] = []
        templates = list(seeding.templates)
        if not templates:
            return queries
        exhausted: set[int] = set()
        failures = [0] * len(templates)
        index = 0
        while len(queries) < target and len(exhausted) < len(templates):
            i = index % len(templates)
            index += 1
            if i in exhausted:
                continue
            sql = generator.instantiate(templates[i])
            if sql is None or sql in seen:
                failures[i] += 1
                # Complex templates stop yielding fresh queries quickly; the
                # paper notes exactly this as the reason Synth skews easier.
                if failures[i] >= 8:
                    exhausted.add(i)
                continue
            failures[i] = 0
            seen.add(sql)
            queries.append(sql)
        return queries


def augment_domain(
    domain: BenchmarkDomain,
    target_queries: int = 1000,
    seed: int = 1234,
    model: SqlToNlModel | None = None,
    rng: random.Random | None = None,
    executor=None,
) -> Split:
    """Convenience wrapper: run the pipeline and return the Synth split.

    ``rng`` overrides the seed-derived RNG; ``executor`` (anything with an
    order-preserving ``map``) parallelizes the translation phases.
    """
    config = PipelineConfig(target_queries=target_queries, seed=seed)
    pipeline = AugmentationPipeline(domain, model=model, config=config)
    return pipeline.run(rng=rng, executor=executor).split
