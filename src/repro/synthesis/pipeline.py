"""The end-to-end automatic training data generation pipeline (Figure 1).

Chains the four phases — Seeding → SQL Generation → SQL-to-NL Translation →
Discrimination — to turn a domain's small expert seed set into a large
synthetic training split ("Synth" in Table 2).  The pipeline also works for
MiniSpider databases (the "Synth Spider" control rows of Table 5) by wrapping
them as ad-hoc domains.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.datasets.records import BenchmarkDomain, NLSQLPair, Split
from repro.llm.base import SqlToNlModel
from repro.synthesis.discriminator import Discriminator, DiscriminatorConfig
from repro.synthesis.generation import GenerationConfig, GenerationStats, SqlGenerator
from repro.synthesis.seeding import SeedingResult, extract_templates
from repro.synthesis.translation import SqlToNlTranslator, TranslationConfig


@dataclass
class PipelineConfig:
    """All knobs of the end-to-end pipeline in one place."""

    target_queries: int = 1000
    seed: int = 1234
    generation: GenerationConfig = field(default_factory=GenerationConfig)
    translation: TranslationConfig = field(default_factory=TranslationConfig)
    discriminator: DiscriminatorConfig = field(default_factory=DiscriminatorConfig)


@dataclass
class PipelineReport:
    """Artifacts and statistics of one pipeline run."""

    seeding: SeedingResult
    n_generated_sql: int
    n_pairs: int
    split: Split
    #: How the generation phase spent its execution-oracle budget, including
    #: candidates the static analyzer rejected without executing.
    generation: GenerationStats | None = None


class AugmentationPipeline:
    """Figure 1: automatic training data generation for one domain.

    Randomness and parallelism are injectable: callers may pass an explicit
    ``rng`` (instead of the pipeline seeding ``random.Random(config.seed)``
    itself) and an ``executor`` whose ``map`` fans the per-query translation
    and selection phases out — ``executor.map`` preserves input order and
    every query is translated independently (the model derives its RNG from
    the SQL text), so any executor yields the same split as the serial path.
    """

    def __init__(
        self,
        domain: BenchmarkDomain,
        model: SqlToNlModel | None = None,
        config: PipelineConfig | None = None,
        rng: random.Random | None = None,
        executor=None,
    ) -> None:
        self.domain = domain
        self.config = config or PipelineConfig()
        self.translator = SqlToNlTranslator(
            domain, model=model, config=self.config.translation
        )
        self.discriminator = Discriminator(self.config.discriminator)
        self._rng = rng
        self._executor = executor

    def __getstate__(self):
        # Executors cannot cross process boundaries; drop them so the
        # pipeline itself stays picklable for executor.map workers.
        state = self.__dict__.copy()
        state["_executor"] = None
        return state

    def run(self, rng: random.Random | None = None, executor=None) -> PipelineReport:
        """Execute all four phases and return the synthetic split.

        ``rng``/``executor`` override the constructor-injected ones; with
        neither injected, each run uses a fresh ``random.Random(config.seed)``
        and runs serially (the legacy behaviour).
        """
        if rng is None:
            rng = self._rng if self._rng is not None else random.Random(self.config.seed)
        if executor is None:
            executor = self._executor

        # Phase 1 — Seeding.
        seeding = extract_templates(self.domain.seed.pairs, self.domain.database.schema)

        # Phase 2 — SQL generation (Algorithm 1), round-robin over templates
        # until the target count is reached or templates dry up.
        generator = SqlGenerator(
            self.domain.database,
            self.domain.enhanced,
            rng,
            config=self.config.generation,
        )
        queries = self._generate_queries(generator, seeding)

        # Phase 3 + 4 — translate and select, independently per query.
        if executor is None:
            pair_lists = [self._pairs_for(sql) for sql in queries]
        else:
            pair_lists = list(executor.map(self._pairs_for, queries))
        pairs: list[NLSQLPair] = [pair for chunk in pair_lists for pair in chunk]

        split = Split(name=f"{self.domain.name}-synth", pairs=pairs)
        self.domain.synth = split
        return PipelineReport(
            seeding=seeding,
            n_generated_sql=len(queries),
            n_pairs=len(pairs),
            split=split,
            generation=generator.stats,
        )

    def _pairs_for(self, sql: str) -> list[NLSQLPair]:
        """Phases 3+4 for one generated query: translate, then select."""
        candidates = self.translator.candidates(sql)
        best = self.discriminator.select(candidates)
        return [
            NLSQLPair(
                question=question,
                sql=sql,
                db_id=self.domain.name,
                source="synth",
            )
            for question in best
        ]

    def _generate_queries(
        self, generator: SqlGenerator, seeding: SeedingResult
    ) -> list[str]:
        """Round-robin template instantiation up to the target count."""
        target = self.config.target_queries
        seen: set[str] = set()
        queries: list[str] = []
        templates = list(seeding.templates)
        if not templates:
            return queries
        exhausted: set[int] = set()
        failures = [0] * len(templates)
        index = 0
        while len(queries) < target and len(exhausted) < len(templates):
            i = index % len(templates)
            index += 1
            if i in exhausted:
                continue
            sql = generator.instantiate(templates[i])
            if sql is None or sql in seen:
                failures[i] += 1
                # Complex templates stop yielding fresh queries quickly; the
                # paper notes exactly this as the reason Synth skews easier.
                if failures[i] >= 8:
                    exhausted.add(i)
                continue
            failures[i] = 0
            seen.add(sql)
            queries.append(sql)
        return queries


def augment_domain(
    domain: BenchmarkDomain,
    target_queries: int = 1000,
    seed: int = 1234,
    model: SqlToNlModel | None = None,
    rng: random.Random | None = None,
    executor=None,
) -> Split:
    """Convenience wrapper: run the pipeline and return the Synth split.

    ``rng`` overrides the seed-derived RNG; ``executor`` (anything with an
    order-preserving ``map``) parallelizes the translation phases.
    """
    config = PipelineConfig(target_queries=target_queries, seed=seed)
    pipeline = AugmentationPipeline(domain, model=model, config=config)
    return pipeline.run(rng=rng, executor=executor).split
