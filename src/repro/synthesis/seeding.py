"""Phase 1 — the Seeding Phase (Section 3.3.1).

Manually created seed queries are lifted into SemQL and their leaf nodes —
tables (T), columns (C), values (V) — are replaced with positional
placeholders, producing query templates (Figure 2, top).  Seed queries that
fall outside the SemQL subset are skipped (and reported), exactly as the
original pipeline works on the SemQL-expressible portion of its seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.records import NLSQLPair
from repro.errors import ReproError
from repro.schema.model import Schema
from repro.semql.from_sql import sql_to_semql
from repro.semql.templates import Template, dedupe_templates, extract_template
from repro.sql import parse


@dataclass
class SeedingResult:
    """Templates extracted from a seed split, plus skip diagnostics."""

    templates: list[Template] = field(default_factory=list)
    skipped: list[tuple[str, str]] = field(default_factory=list)  # (sql, reason)

    @property
    def n_unique(self) -> int:
        return len(self.templates)


def extract_templates(pairs, schema: Schema) -> SeedingResult:
    """Extract de-duplicated templates from seed NL/SQL pairs."""
    result = SeedingResult()
    raw: list[Template] = []
    for pair in pairs:
        sql = pair.sql if isinstance(pair, NLSQLPair) else str(pair)
        try:
            z = sql_to_semql(parse(sql), schema)
            raw.append(extract_template(z, source_sql=sql))
        except ReproError as error:
            result.skipped.append((sql, str(error)))
    result.templates = dedupe_templates(raw)
    return result
