"""Phase 3 — SQL-to-NL Translation (Section 3.3.3).

Each generated SQL query is handed to a (simulated) large language model,
which emits ``n_candidates`` natural-language question candidates (the paper
uses 8 to maximise linguistic diversity).  For domain-specific databases the
model is first fine-tuned on the domain's seed pairs, transferring the
domain lexicon — the offline counterpart of fine-tuning GPT-3 on the
manually created seed NL/SQL pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.records import BenchmarkDomain
from repro.llm.base import SqlToNlModel
from repro.llm.models import default_generator


@dataclass
class TranslationConfig:
    """Knobs of the SQL-to-NL phase."""

    n_candidates: int = 8
    fine_tune_on_seeds: bool = True
    fine_tune_epochs: int = 4  # the paper's GPT-3 setting


class SqlToNlTranslator:
    """Wraps a simulated LLM for use inside the pipeline."""

    def __init__(
        self,
        domain: BenchmarkDomain,
        model: SqlToNlModel | None = None,
        config: TranslationConfig | None = None,
    ) -> None:
        self.domain = domain
        self.model = model or default_generator()
        self.config = config or TranslationConfig()
        if self.config.fine_tune_on_seeds:
            self.model.fine_tune(
                domain.seed.pairs,
                domain=domain.name,
                lexicon=domain.lexicon,
                epochs=self.config.fine_tune_epochs,
            )

    def candidates(self, sql: str) -> list[str]:
        """The candidate questions for one SQL query."""
        return self.model.translate(
            sql,
            self.domain.enhanced,
            n_candidates=self.config.n_candidates,
            domain=self.domain.name,
        )
