"""Phase 3 — SQL-to-NL Translation (Section 3.3.3), with recovery.

Each generated SQL query is handed to a (simulated) large language model,
which emits ``n_candidates`` natural-language question candidates (the paper
uses 8 to maximise linguistic diversity).  For domain-specific databases the
model is first fine-tuned on the domain's seed pairs, transferring the
domain lexicon — the offline counterpart of fine-tuning GPT-3 on the
manually created seed NL/SQL pairs.

In production the translation phase drives a live API, so this is where
faults concentrate: rate limits, timeouts, truncated or malformed
completions.  The translator therefore

* **validates** every completion (right candidate count, non-empty text) —
  a truncated or malformed response is detected client-side and raised as a
  retryable fault, exactly as a real API client would;
* **retries** transient faults under a :class:`~repro.resilience.RetryPolicy`
  (exponential backoff, deterministic seeded jitter, budget cap);
* optionally consults a :class:`~repro.resilience.CircuitBreaker` guarding
  the model dependency;
* on exhaustion or a permanent fault, reports a structured
  :class:`TranslationFailure` so the pipeline can dead-letter the query
  instead of aborting the run.

Because the model's RNG is keyed by (model seed, SQL text) — never by call
order or attempt — a retried translation is byte-identical to a first-try
success, which is what keeps chaos runs reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.records import BenchmarkDomain
from repro.errors import ReproError
from repro.llm.base import SqlToNlModel
from repro.llm.models import default_generator
from repro.obs import get_tracer
from repro.resilience.breaker import CircuitBreaker, CircuitOpenError
from repro.resilience.clock import SYSTEM_CLOCK
from repro.resilience.deadletter import DeadLetter
from repro.resilience.faults import (
    TRANSIENT_ERRORS,
    FaultError,
    MalformedCompletionError,
)
from repro.resilience.retry import RetryOutcome, RetryPolicy, call_with_retry


class TranslationFailure(ReproError):
    """A query the translation phase gave up on (permanent fault or
    exhausted retry budget); carries the structured dead-letter reason."""

    def __init__(self, sql: str, kind: str, attempts: int, reason: str) -> None:
        super().__init__(
            f"translation of {sql!r} failed permanently after {attempts} "
            f"attempt(s): [{kind}] {reason}"
        )
        self.sql = sql
        self.kind = kind
        self.attempts = attempts
        self.reason = reason

    def dead_letter(self) -> DeadLetter:
        return DeadLetter(
            site="llm",
            identity=self.sql,
            kind=self.kind,
            reason=self.reason,
            attempts=self.attempts,
        )


@dataclass
class TranslationConfig:
    """Knobs of the SQL-to-NL phase."""

    n_candidates: int = 8
    fine_tune_on_seeds: bool = True
    fine_tune_epochs: int = 4  # the paper's GPT-3 setting
    #: Retry policy for transient model faults (always on; a fault-free
    #: call pays nothing).
    retry: RetryPolicy = field(default_factory=RetryPolicy)


@dataclass
class TranslationResult:
    """One query's translation outcome, with recovery accounting."""

    sql: str
    candidates: list[str] | None
    attempts: int = 1
    #: fault kind -> times this call recovered from it.
    recovered: dict[str, int] = field(default_factory=dict)
    slept_s: float = 0.0
    dead_letter: DeadLetter | None = None

    @property
    def ok(self) -> bool:
        return self.candidates is not None


class SqlToNlTranslator:
    """Wraps a (possibly flaky) LLM for use inside the pipeline."""

    def __init__(
        self,
        domain: BenchmarkDomain,
        model: SqlToNlModel | None = None,
        config: TranslationConfig | None = None,
        breaker: CircuitBreaker | None = None,
        clock=SYSTEM_CLOCK,
    ) -> None:
        self.domain = domain
        self.model = model or default_generator()
        self.config = config or TranslationConfig()
        self.breaker = breaker
        self.clock = clock
        if self.config.fine_tune_on_seeds:
            self.model.fine_tune(
                domain.seed.pairs,
                domain=domain.name,
                lexicon=domain.lexicon,
                epochs=self.config.fine_tune_epochs,
            )

    def __getstate__(self):
        # Breakers hold locks and fake clocks hold conditions — neither may
        # cross a process boundary.  Worker copies retry independently
        # against the real clock; breaker state stays with the parent.
        state = self.__dict__.copy()
        state["breaker"] = None
        state["clock"] = SYSTEM_CLOCK
        return state

    def candidates(self, sql: str) -> list[str]:
        """The candidate questions for one SQL query.

        Raises :class:`TranslationFailure` when the query cannot be
        translated within the retry budget.
        """
        result = self.translate_with_recovery(sql)
        if result.candidates is None:
            letter = result.dead_letter
            raise TranslationFailure(sql, letter.kind, letter.attempts, letter.reason)
        return result.candidates

    def translate_with_recovery(self, sql: str) -> TranslationResult:
        """Translate one query; never raises for model faults.

        Transient faults are retried; permanent ones (or an exhausted
        budget) produce a :class:`TranslationResult` carrying a dead letter
        instead of candidates.
        """
        tracer = get_tracer()
        outcome = RetryOutcome()
        with tracer.span("llm.translate") as span:
            try:
                candidates = call_with_retry(
                    lambda: self._attempt(sql),
                    self.config.retry,
                    identity=sql,
                    clock=self.clock,
                    retry_on=TRANSIENT_ERRORS + (CircuitOpenError,),
                    outcome=outcome,
                )
            except (FaultError, CircuitOpenError) as exc:
                kind = getattr(exc, "kind", "circuit-open")
                span.set_attr("attempts", outcome.attempts)
                span.set_attr("dead_letter", kind)
                return TranslationResult(
                    sql=sql,
                    candidates=None,
                    attempts=outcome.attempts,
                    slept_s=outcome.slept_s,
                    dead_letter=DeadLetter(
                        site="llm",
                        identity=sql,
                        kind=kind,
                        reason=str(exc),
                        attempts=outcome.attempts,
                    ),
                )
            span.set_attr("attempts", outcome.attempts)
            # Recovery is accounted post-hoc: the retry helper owns the loop,
            # so recovered fault kinds become events after the fact.
            for kind, times in outcome.recovered.items():
                tracer.add_event(span, "recovered", kind=kind, times=times)
            return TranslationResult(
                sql=sql,
                candidates=candidates,
                attempts=outcome.attempts,
                recovered=dict(outcome.recovered),
                slept_s=outcome.slept_s,
            )

    # -- one attempt ----------------------------------------------------------

    def _attempt(self, sql: str) -> list[str]:
        if self.breaker is not None:
            self.breaker.check()
        try:
            candidates = self.model.translate(
                sql,
                self.domain.enhanced,
                n_candidates=self.config.n_candidates,
                domain=self.domain.name,
            )
            self._validate(candidates)
        except FaultError:
            if self.breaker is not None:
                self.breaker.record_failure()
            raise
        if self.breaker is not None:
            self.breaker.record_success()
        return candidates

    def _validate(self, candidates: list[str]) -> None:
        """Client-side completion validation (how truncation is *detected*)."""
        if len(candidates) != self.config.n_candidates:
            raise MalformedCompletionError(
                f"completion truncated: {len(candidates)} of "
                f"{self.config.n_candidates} candidates",
                kind="truncated",
            )
        if any(not candidate.strip() for candidate in candidates):
            raise MalformedCompletionError(
                "completion malformed: empty candidate text", kind="malformed"
            )
