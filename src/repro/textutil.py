"""Shared text canonicalization.

One authority for "are these two strings the same question?": schema
linking and the serving result cache must agree on it, or equivalent
questions miss the cache and (worse) link differently.  Everything that
keys on question text goes through :func:`normalize_question`.
"""

from __future__ import annotations

import re

_WS_RE = re.compile(r"\s+")


def collapse_whitespace(text: str) -> str:
    """Collapse any whitespace run to a single space and strip the ends."""
    return _WS_RE.sub(" ", text).strip()


def normalize_question(text: str) -> str:
    """Canonical form of a question: casefold + whitespace collapse.

    Used as the serving result-cache key and as the first step of the
    linker's token normalization, so ``"How  Many QUASARS?"`` and
    ``"how many quasars?"`` hit the same cache entry and link identically.
    """
    return collapse_whitespace(text.casefold())
