"""Shared fixtures: a small schema/database pair used across unit tests.

The fixtures mirror the paper's running example (SDSS specobj/photoobj) at
miniature scale so every module can exercise realistic astrophysics queries
without paying for the full dataset builders.
"""

from __future__ import annotations

import pytest

from repro.checks import lockorder
from repro.engine import create_database
from repro.schema.enhanced import EnhancedSchema
from repro.schema.model import Column, ColumnType, ForeignKey, Schema, TableDef

I = ColumnType.INTEGER
F = ColumnType.REAL
T = ColumnType.TEXT


@pytest.fixture(scope="session", autouse=True)
def lock_order_monitor():
    """Under ``REPRO_CHECKS=1``, record every lock acquisition for the whole
    session and fail it if any pair of locks was ever taken in both orders.

    Off by default: without the environment flag the fixture is inert and
    ``new_lock`` hands out plain locks.  CI runs the concurrency-heavy
    suites (test_runtime.py, test_serving.py) with the flag on.
    """
    if not lockorder.enabled_by_env():
        yield None
        return
    monitor = lockorder.install(strict=False)
    try:
        yield monitor
    finally:
        lockorder.uninstall()
    monitor.assert_clean()


@pytest.fixture(scope="session")
def mini_schema() -> Schema:
    return Schema(
        name="mini_sdss",
        tables=(
            TableDef(
                "specobj",
                (
                    Column("specobjid", I, alias="spectroscopic object id", nullable=False),
                    Column("bestobjid", I, alias="best object id"),
                    Column("class", T, alias="spectroscopic class"),
                    Column("subclass", T, alias="spectroscopic subclass"),
                    Column("z", F, alias="redshift"),
                    Column("ra", F, alias="right ascension"),
                ),
                primary_key="specobjid",
                alias="spectroscopic object",
            ),
            TableDef(
                "photoobj",
                (
                    Column("objid", I, alias="object id", nullable=False),
                    Column("u", F, alias="magnitude u"),
                    Column("r", F, alias="magnitude r"),
                    Column("type", I, alias="photometric type"),
                ),
                primary_key="objid",
                alias="photometric object",
            ),
            TableDef(
                "neighbors",
                (
                    Column("objid", I, alias="object id"),
                    Column("neighborobjid", I, alias="neighbor object id"),
                    Column("neighbormode", I, alias="neighbor mode"),
                    Column("distance", F, alias="distance"),
                ),
                alias="nearest neighbor",
            ),
        ),
        foreign_keys=(
            ForeignKey("specobj", "bestobjid", "photoobj", "objid"),
            ForeignKey("neighbors", "objid", "photoobj", "objid"),
            ForeignKey("neighbors", "neighborobjid", "photoobj", "objid"),
        ),
    )


@pytest.fixture(scope="session")
def mini_db(mini_schema):
    return create_database(
        mini_schema,
        {
            "photoobj": [
                (1, 19.0, 16.5, 3),
                (2, 20.0, 19.5, 6),
                (3, 21.0, 18.0, 3),
                (4, 18.2, 17.9, 6),
                (5, 22.5, 19.3, 0),
            ],
            "specobj": [
                (10, 1, "GALAXY", "STARBURST", 0.70, 120.0),
                (11, 2, "GALAXY", "AGN", 0.30, 121.0),
                (12, 3, "STAR", "OB", 0.00, 122.0),
                (13, 4, "QSO", "BROADLINE", 1.80, 123.0),
                (14, 5, "GALAXY", None, 0.55, 124.5),
            ],
            "neighbors": [
                (1, 2, 2, 0.05),
                (2, 3, 1, 0.20),
                (3, 1, 2, 0.02),
                (4, 5, 3, 0.40),
            ],
        },
    )


@pytest.fixture(scope="session")
def mini_enhanced(mini_db) -> EnhancedSchema:
    from repro.schema.introspect import profile_database

    enhanced = profile_database(mini_db)
    enhanced.mark_math_group("photoobj", "photoobj:magnitude", "u", "r")
    return enhanced


@pytest.fixture(scope="session")
def sdss_domain():
    """The real SDSS domain at small scale (session-cached: it is expensive)."""
    from repro.datasets import sdss

    return sdss.build(scale=0.2)
