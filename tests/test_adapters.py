"""Tests for the domain-adapter registry (repro.adapters)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro import adapters
from repro.adapters import AdapterManifest
from repro.errors import AdapterError

REPO_ROOT = Path(__file__).resolve().parent.parent
CLIMATE_ADAPTER = REPO_ROOT / "examples" / "climate_adapter.py"


def _forget_climate():
    """Drop the toy adapter from the registry AND the import cache, so each
    test exercises a fresh import of the single-file adapter."""
    adapters.unregister("climate")
    sys.modules.pop("repro_adapter_climate_adapter", None)


# -- manifests ------------------------------------------------------------------


def test_manifest_validates_name():
    with pytest.raises(AdapterError):
        AdapterManifest(name="", module="x")
    with pytest.raises(AdapterError):
        AdapterManifest(name="Bad Name", module="x")
    with pytest.raises(AdapterError):
        AdapterManifest(name="ok", module="")
    AdapterManifest(name="snake_case-too", module="x")  # no raise


def test_manifest_spec_roundtrip():
    manifest = AdapterManifest(
        name="toy", module="toy.mod", attr="make", source="/tmp/toy.py"
    )
    spec = manifest.spec()
    assert spec == {"module": "toy.mod", "attr": "make", "source": "/tmp/toy.py"}
    assert AdapterManifest.from_spec("toy", spec) == manifest


# -- registration ---------------------------------------------------------------


def test_builtins_are_registered_and_sorted():
    names = adapters.list_adapters()
    assert set(names) >= {"cordis", "sdss", "oncomx"}
    assert list(names) == sorted(names)


def test_register_and_unregister():
    manifest = AdapterManifest(name="toy_reg", module="nonexistent.module")
    adapter = adapters.register(manifest)
    try:
        assert adapters.get_adapter("toy_reg") is adapter
        assert adapters.get_adapter("TOY_REG") is adapter  # case-insensitive
        assert "toy_reg" in adapters.list_adapters()
        assert not adapter.loaded()  # registration never imports
    finally:
        adapters.unregister("toy_reg")
    assert "toy_reg" not in adapters.list_adapters()
    adapters.unregister("toy_reg")  # idempotent


def test_identical_reregistration_is_noop():
    manifest = AdapterManifest(name="toy_dup", module="nonexistent.module")
    first = adapters.register(manifest)
    try:
        again = adapters.register(AdapterManifest(name="toy_dup", module="nonexistent.module"))
        assert again is first
    finally:
        adapters.unregister("toy_dup")


def test_conflicting_registration_rejected():
    with adapters.temporary(AdapterManifest(name="toy_conf", module="mod.a")):
        with pytest.raises(AdapterError, match="already registered"):
            adapters.register(AdapterManifest(name="toy_conf", module="mod.b"))
        # replace=True is the explicit override.
        replaced = adapters.register(
            AdapterManifest(name="toy_conf", module="mod.b"), replace=True
        )
        assert replaced.manifest.module == "mod.b"


def test_unknown_adapter_error_lists_registered():
    with pytest.raises(AdapterError, match="cordis"):
        adapters.get_adapter("definitely-not-a-domain")


def test_temporary_restores_displaced_manifest():
    original = adapters.get_manifest("cordis")
    shadow = AdapterManifest(name="cordis", module="examples.shadow")
    with adapters.temporary(shadow, replace=True):
        assert adapters.get_manifest("cordis") is shadow
    assert adapters.get_manifest("cordis") == original


def test_deterministic_ordering_is_registration_order_independent():
    a = AdapterManifest(name="zz_last", module="m")
    b = AdapterManifest(name="aa_first", module="m")
    with adapters.temporary(a), adapters.temporary(b):
        names = adapters.list_adapters()
        assert names.index("aa_first") < names.index("zz_last")
        assert list(names) == sorted(names)


# -- lazy loading and building --------------------------------------------------


def test_adapter_build_routes_to_dataset_module():
    domain = adapters.get_adapter("sdss").build(scale=0.1)
    assert domain.name == "sdss"
    assert domain.database.row_count() > 0


def test_adapter_build_with_seed_override():
    adapter = adapters.get_adapter("oncomx")
    one = adapter.build(scale=0.1, seed=3)
    two = adapter.build(scale=0.1, seed=3)
    assert [p.sql for p in one.seed.pairs] == [p.sql for p in two.seed.pairs]


def test_registry_is_lazy_until_build():
    # A subprocess proves importing the registry does not import the three
    # dataset modules; only build() pays for the one it needs.
    code = (
        "import sys\n"
        "from repro import adapters\n"
        "assert 'repro.datasets.cordis' not in sys.modules\n"
        "assert 'repro.datasets.oncomx' not in sys.modules\n"
        "adapters.get_adapter('oncomx').build(scale=0.1)\n"
        "assert 'repro.datasets.oncomx' in sys.modules\n"
        "assert 'repro.datasets.cordis' not in sys.modules\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stderr


def test_build_rejects_non_domain_return():
    # builtins.dict happily accepts scale=/seed= kwargs but returns a dict,
    # not a BenchmarkDomain — the duck-type check must reject it.
    with adapters.temporary(
        AdapterManifest(name="toy_bad", module="builtins", attr="dict")
    ):
        with pytest.raises(AdapterError, match="BenchmarkDomain"):
            adapters.get_adapter("toy_bad").build(scale=1.0, seed=2)


def test_builder_from_spec_errors():
    with pytest.raises(AdapterError, match="cannot import"):
        adapters.builder_from_spec({"module": "no.such.module"})
    with pytest.raises(AdapterError, match="no callable"):
        adapters.builder_from_spec({"module": "math", "attr": "pi"})


def test_builder_from_spec_with_source_file():
    spec = {
        "module": "repro_adapter_climate_adapter",
        "attr": "build",
        "source": str(CLIMATE_ADAPTER),
    }
    try:
        builder = adapters.builder_from_spec(spec)
        domain = builder(scale=0.5, seed=9)
        assert domain.name == "climate"
    finally:
        _forget_climate()  # the file self-registers on import


# -- single-file adapters (the walkthrough) -------------------------------------


def test_load_adapter_source_self_registers():
    module = adapters.load_adapter_source(str(CLIMATE_ADAPTER))
    try:
        assert "climate" in adapters.list_adapters()
        adapter = adapters.get_adapter("climate")
        assert adapter.manifest.source == str(module.__file__)
        domain = adapter.build(scale=0.3, seed=4)
        assert domain.name == "climate"
        assert not domain.validate_gold_sql()
        # Loading again is a no-op (identical manifest).
        adapters.load_adapter_source(str(CLIMATE_ADAPTER))
    finally:
        _forget_climate()


def test_toy_adapter_through_tables_cli(capsys):
    # The acceptance walkthrough: a brand-new domain from one file runs the
    # Table-1 path without editing any existing module.
    from repro import cli

    code = cli.main(
        [
            "tables", "1",
            "--adapter", str(CLIMATE_ADAPTER),
            "--domain", "climate",
            "--no-cache",
        ]
    )
    try:
        out = capsys.readouterr().out
        assert code == 0
        assert "CLIMATE" in out
    finally:
        _forget_climate()


# -- deprecation shims ----------------------------------------------------------


def test_tasks_module_shims_warn_and_delegate():
    from repro.experiments import tasks

    with pytest.warns(DeprecationWarning):
        assert tasks.DOMAINS == tasks.DEFAULT_DOMAINS
    with pytest.warns(DeprecationWarning):
        builders = tasks.DOMAIN_BUILDERS
    assert set(builders) == set(tasks.DEFAULT_DOMAINS)
    domain = builders["oncomx"](scale=0.1)
    assert domain.name == "oncomx"


def test_task_graph_carries_adapter_specs():
    from repro.experiments.config import quick
    from repro.experiments.tasks import build_suite_graph, domain_task

    graph = build_suite_graph(quick())
    task = graph.task(domain_task("cordis"))
    assert task.params["adapter"] == {
        "module": "repro.datasets.cordis",
        "attr": "build",
    }
