"""Tests for the schema-aware static analyzer (repro.analysis)."""

import pytest

from repro.analysis import (
    Severity,
    analyze,
    check_database_integrity,
    lint_domain,
    rejects_execution,
)
from repro.datasets import cordis, oncomx, sdss
from repro.engine.database import create_database
from repro.schema.introspect import profile_database
from repro.schema.model import Column, ColumnType, ForeignKey, Schema, TableDef
from repro.sql import ast


@pytest.fixture(scope="module")
def mini():
    schema = Schema(
        name="mini",
        tables=(
            TableDef(
                "projects",
                (
                    Column("id", ColumnType.INTEGER),
                    Column("title", ColumnType.TEXT),
                    Column("cost", ColumnType.REAL),
                    Column("year", ColumnType.INTEGER),
                ),
                primary_key="id",
            ),
            TableDef(
                "people",
                (
                    Column("id", ColumnType.INTEGER),
                    Column("name", ColumnType.TEXT),
                    Column("project_id", ColumnType.INTEGER),
                ),
                primary_key="id",
            ),
        ),
        foreign_keys=(ForeignKey("people", "project_id", "projects", "id"),),
    )
    database = create_database(
        schema,
        {
            "projects": [(1, "alpha", 10.0, 2019), (2, "beta", 20.0, 2021)],
            "people": [(1, "ann", 1), (2, "bob", 2)],
        },
    )
    enhanced = profile_database(database)
    return schema, enhanced, database


def rules_of(diagnostics):
    return {d.rule for d in diagnostics}


# -- one deliberately broken query per rule -----------------------------------

BROKEN = [
    ("SELECT title FROM", "syntax.error"),
    ("SELECT title FROM nope", "name.unknown-table"),
    ("SELECT bogus FROM projects", "name.unknown-column"),
    ("SELECT T9.title FROM projects AS T1", "name.dangling-alias"),
    (
        "SELECT T1.title FROM projects AS T1, people AS T1",
        "name.duplicate-binding",
    ),
    (
        "SELECT id FROM projects AS T1 JOIN people AS T2 ON T1.id = T2.project_id",
        "name.ambiguous-column",
    ),
    ("SELECT title FROM projects WHERE cost > 'abc'", "type.incompatible-comparison"),
    ("SELECT title FROM projects WHERE year LIKE 'a%'", "type.like-non-text"),
    ("SELECT title + 1 FROM projects", "type.math-on-non-numeric"),
    ("SELECT SUM(title) FROM projects", "type.aggregate-non-numeric"),
    (
        "SELECT title FROM projects WHERE year BETWEEN 2025 AND 2020",
        "type.between-reversed",
    ),
    ("SELECT title FROM projects WHERE SUM(cost) > 5", "agg.aggregate-in-where"),
    (
        "SELECT COUNT(*) FROM projects GROUP BY SUM(cost)",
        "agg.aggregate-in-group-by",
    ),
    ("SELECT SUM(MAX(cost)) FROM projects", "agg.nested-aggregate"),
    ("SELECT title, COUNT(*) FROM projects GROUP BY year", "agg.ungrouped-column"),
    (
        "SELECT T1.title FROM projects AS T1 JOIN people AS T2 ON T1.id = T2.id",
        "join.non-fk-equijoin",
    ),
    (
        "SELECT T1.title, T2.name FROM projects AS T1, people AS T2",
        "join.cartesian-product",
    ),
    (
        "SELECT title FROM projects WHERE year > 3000",
        "cost.unsatisfiable-predicate",
    ),
    (
        "SELECT title FROM projects WHERE year > 2020 AND year < 2020",
        "cost.contradictory-filter",
    ),
    ("SELECT title FROM projects WHERE year > 3000", "cost.empty-result"),
    ("SELECT AVG(cost) FROM projects WHERE year > 3000", "cost.vacuous-aggregate"),
    ("SELECT title FROM projects LIMIT 0", "cost.limit-zero"),
    ("SELECT AVG(id) FROM projects", "type.non-aggregatable"),
]


@pytest.mark.parametrize("sql,rule", BROKEN, ids=[rule for _, rule in BROKEN])
def test_broken_query_fires_rule(mini, sql, rule):
    schema, enhanced, _ = mini
    assert rule in rules_of(analyze(sql, schema, enhanced))


def test_having_without_group_by_rule(mini):
    # The parser only accepts HAVING after GROUP BY, so this shape can only
    # be built directly as an AST (e.g. by a buggy generator).
    schema, enhanced, _ = mini
    query = ast.Query(
        select=ast.Select(
            items=(ast.SelectItem(ast.ColumnRef(None, "title")),),
            from_tables=(ast.TableRef("projects"),),
            having=ast.Comparison(
                ">", ast.FuncCall("count", (ast.Star(),)), ast.Literal(1)
            ),
        )
    )
    assert "agg.having-without-group-by" in rules_of(analyze(query, schema, enhanced))


def test_clean_query_has_no_diagnostics(mini):
    schema, enhanced, _ = mini
    sql = (
        "SELECT T1.title FROM projects AS T1 JOIN people AS T2 "
        "ON T1.id = T2.project_id WHERE T1.year = 2019"
    )
    assert analyze(sql, schema, enhanced) == []


def test_analysis_without_enhanced_schema_skips_cost(mini):
    schema, _, _ = mini
    assert analyze("SELECT title FROM projects WHERE year > 3000", schema) == []


# -- rejects_execution soundness ----------------------------------------------


def test_rejected_queries_fail_or_return_empty(mini):
    schema, enhanced, database = mini
    cases = [
        "SELECT bogus FROM projects",
        "SELECT SUM(title) FROM projects",
        "SELECT title FROM projects WHERE SUM(cost) > 5",
        "SELECT title FROM projects WHERE year > 3000",
        "SELECT title FROM projects WHERE year IS NULL",
        "SELECT title FROM projects LIMIT 0",
        "SELECT title FROM projects WHERE cost > "
        "(SELECT MAX(cost) FROM projects WHERE year > 3000)",
    ]
    for sql in cases:
        diagnostics = analyze(sql, schema, enhanced)
        assert rejects_execution(diagnostics), sql
        result = database.try_execute(sql)
        assert result is None or not result.rows, sql


def test_warnings_alone_do_not_reject(mini):
    schema, enhanced, _ = mini
    sql = "SELECT T1.title FROM projects AS T1 JOIN people AS T2 ON T1.id = T2.id"
    diagnostics = analyze(sql, schema, enhanced)
    assert diagnostics  # the non-FK join warning fired ...
    assert not rejects_execution(diagnostics)  # ... but does not reject


def test_empty_result_needs_require_nonempty(mini):
    schema, enhanced, _ = mini
    diagnostics = analyze("SELECT title FROM projects WHERE year > 3000", schema, enhanced)
    assert rejects_execution(diagnostics, require_nonempty=True)
    assert not rejects_execution(diagnostics, require_nonempty=False)


# -- benchmark domains lint clean ---------------------------------------------


@pytest.mark.parametrize("builder", [cordis.build, sdss.build, oncomx.build])
def test_domain_gold_queries_have_no_errors(builder):
    domain = builder(scale=0.15)
    for split in (domain.seed, domain.dev):
        for pair in split:
            diagnostics = analyze(pair.sql, domain.database.schema, domain.enhanced)
            errors = [d for d in diagnostics if d.severity is Severity.ERROR]
            assert errors == [], f"{pair.sql}: {[d.render() for d in errors]}"


def test_lint_domain_reports_clean_domain():
    domain = sdss.build(scale=0.15)
    report = lint_domain(domain)
    assert report.n_queries == len(domain.seed) + len(domain.dev)
    assert not report.has_errors
    assert "sdss" in report.render()


# -- dataset referential integrity --------------------------------------------


def test_integrity_clean_database(mini):
    _, _, database = mini
    assert check_database_integrity(database) == []


def test_integrity_flags_broken_fk(mini):
    schema, _, _ = mini
    broken = create_database(
        schema,
        {
            "projects": [(1, "alpha", 10.0, 2019)],
            "people": [(1, "ann", 1), (2, "bob", 99)],  # 99 → nothing
        },
    )
    diagnostics = check_database_integrity(broken)
    assert [d.rule for d in diagnostics] == ["data.broken-fk"]
    assert diagnostics[0].severity is Severity.ERROR
    assert "people.project_id" in diagnostics[0].message
