"""Property-based printer/parser round-trip on randomly *built* ASTs.

Unlike the string-level fixpoint test in ``test_properties.py``, these
strategies construct :mod:`repro.sql.ast` trees directly and assert the
strong property ``parse(to_sql(tree)) == tree`` — the canonical printer must
be a faithful inverse of the parser over the whole grammar the strategies
cover, including nested boolean operators, subqueries, set operations and
aggregates.

The strategies stay inside the dialect's shape constraints so every printed
query is valid input: literals are non-negative (``-5`` parses as a unary
minus), comparison operands sit at the additive level, HAVING only appears
with GROUP BY, and ``ALL`` only with UNION.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import ast, parse, to_sql

# A fixed identifier pool keeps clear of every dialect keyword and shrinks
# well (the tokenizer lower-cases keywords, so pool names must not collide).
_NAMES = ("alpha", "beta", "gamma", "delta", "foo", "bar", "baz", "qux")

idents = st.sampled_from(_NAMES)

int_literals = st.integers(min_value=0, max_value=10_000).map(ast.Literal)
float_literals = st.integers(min_value=1, max_value=9_999).map(
    lambda n: ast.Literal(n / 4)
)
str_literals = st.text(
    alphabet="abcdefg xyz'", min_size=0, max_size=8
).map(ast.Literal)
literals = st.one_of(int_literals, float_literals, str_literals)

column_refs = st.builds(
    ast.ColumnRef, table=st.none() | idents, column=idents
)

atoms = st.one_of(literals, column_refs)

unary = st.builds(ast.UnaryMinus, operand=atoms)

binary = st.builds(
    ast.BinaryOp,
    op=st.sampled_from(("+", "-", "*", "/", "%")),
    left=st.one_of(atoms, unary),
    right=st.one_of(atoms, unary),
)

func_calls = st.one_of(
    st.builds(
        ast.FuncCall,
        name=st.sampled_from(("count", "sum", "avg", "min", "max", "abs")),
        args=st.tuples(st.one_of(column_refs, binary)),
        distinct=st.booleans(),
    ),
    st.just(ast.FuncCall(name="count", args=(ast.Star(),))),
)

#: Operands of comparisons — the additive expression level of the grammar.
additive = st.one_of(atoms, unary, binary, func_calls)

comparisons = st.builds(
    ast.Comparison,
    op=st.sampled_from(("=", "!=", "<", ">", "<=", ">=")),
    left=additive,
    right=additive,
)

like = st.builds(
    ast.Comparison,
    op=st.sampled_from(("like", "not like")),
    left=column_refs,
    right=str_literals,
)

between = st.builds(
    ast.Between,
    expr=st.one_of(column_refs, binary),
    low=st.one_of(int_literals, float_literals),
    high=st.one_of(int_literals, float_literals),
    negated=st.booleans(),
)

in_list = st.builds(
    ast.InList,
    expr=column_refs,
    values=st.lists(literals, min_size=1, max_size=3).map(tuple),
    negated=st.booleans(),
)

is_null = st.builds(ast.IsNull, expr=column_refs, negated=st.booleans())

simple_predicates = st.one_of(comparisons, like, between, in_list, is_null)

predicates = st.recursive(
    simple_predicates,
    lambda inner: st.builds(
        ast.BoolOp,
        op=st.sampled_from(("and", "or")),
        operands=st.lists(inner, min_size=2, max_size=3).map(tuple),
    ),
    max_leaves=6,
)


@st.composite
def selects(draw, depth: int = 1):
    items = tuple(
        draw(
            st.builds(
                ast.SelectItem,
                expr=st.one_of(additive, st.just(ast.Star())),
                alias=st.none() | idents,
            )
        )
        for _ in range(draw(st.integers(1, 3)))
    )
    from_tables = [
        draw(st.builds(ast.TableRef, name=idents, alias=st.none() | idents))
    ]
    if depth > 0 and draw(st.booleans()):
        from_tables.append(
            ast.SubqueryRef(query=draw(queries(depth - 1)), alias=draw(idents))
        )
    joins = tuple(
        draw(
            st.builds(
                ast.Join,
                table=st.builds(ast.TableRef, name=idents, alias=st.none() | idents),
                condition=st.builds(
                    ast.Comparison,
                    op=st.just("="),
                    left=column_refs,
                    right=column_refs,
                ),
            )
        )
        for _ in range(draw(st.integers(0, 2)))
    )
    where = draw(st.none() | predicates)
    if depth > 0 and draw(st.booleans()):
        where = draw(
            st.builds(
                ast.InSubquery,
                expr=column_refs,
                query=queries(depth - 1),
                negated=st.booleans(),
            )
            | st.builds(ast.Exists, query=queries(depth - 1), negated=st.booleans())
            | st.builds(
                ast.Comparison,
                op=st.sampled_from(("=", "<", ">")),
                left=column_refs,
                right=st.builds(ast.ScalarSubquery, query=queries(depth - 1)),
            )
        )
    group_by = tuple(
        draw(column_refs) for _ in range(draw(st.integers(0, 2)))
    )
    having = draw(st.none() | comparisons) if group_by else None
    order_by = tuple(
        draw(st.builds(ast.OrderItem, expr=st.one_of(column_refs, func_calls), desc=st.booleans()))
        for _ in range(draw(st.integers(0, 2)))
    )
    return ast.Select(
        items=items,
        from_tables=tuple(from_tables),
        joins=joins,
        where=where,
        group_by=group_by,
        having=having,
        order_by=order_by,
        limit=draw(st.none() | st.integers(0, 100)),
        distinct=draw(st.booleans()),
    )


@st.composite
def queries(draw, depth: int = 1):
    select = draw(selects(depth))
    set_op = draw(st.none() | st.sampled_from(("union", "intersect", "except")))
    if set_op is None:
        return ast.Query(select=select)
    right = ast.Query(select=draw(selects(0)))
    set_all = draw(st.booleans()) if set_op == "union" else False
    return ast.Query(select=select, set_op=set_op, right=right, set_all=set_all)


@given(queries())
@settings(max_examples=200, deadline=None)
def test_ast_print_parse_round_trip(query):
    printed = to_sql(query)
    reparsed = parse(printed)
    assert reparsed == query, printed


@given(predicates)
@settings(max_examples=200, deadline=None)
def test_predicate_print_parse_round_trip(predicate):
    from repro.sql.parser import parse_expression

    printed = to_sql(predicate)
    assert parse_expression(printed) == predicate, printed


@given(queries())
@settings(max_examples=100, deadline=None)
def test_printed_form_is_a_fixpoint(query):
    printed = to_sql(query)
    assert to_sql(parse(printed)) == printed
