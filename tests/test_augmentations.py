"""Unit tests for the DBPal-style NL augmentation extension."""

import random

import pytest

from repro.datasets.records import NLSQLPair
from repro.nlgen.augmentations import (
    augment_pairs,
    augment_question,
    delete_random_word,
    rewrite_prefix,
    substitute_synonyms,
)

QUESTION = "Find the average redshift of all the galaxies whose class is GALAXY."


def test_synonym_substitution_changes_words():
    rng = random.Random(1)
    results = {substitute_synonyms(QUESTION, rng) for _ in range(10)}
    assert any(r != QUESTION for r in results)
    for result in results:
        # Values and numbers are never touched.
        assert "GALAXY" in result


def test_synonym_preserves_capitalisation():
    rng = random.Random(3)
    result = substitute_synonyms("Find the redshift.", rng, max_swaps=1)
    assert result[0].isupper()


def test_delete_random_word_removes_filler():
    rng = random.Random(2)
    result = delete_random_word(QUESTION, rng)
    assert len(result.split()) == len(QUESTION.split()) - 1


def test_delete_without_candidates_is_identity():
    assert delete_random_word("Count galaxies", random.Random(0)) == "Count galaxies"


def test_rewrite_prefix():
    rng = random.Random(4)
    result = rewrite_prefix("Find the redshift of galaxies.", rng)
    assert not result.startswith("Find")
    assert result.endswith("the redshift of galaxies.")


def test_rewrite_prefix_no_match_is_identity():
    question = "Under which class do objects fall?"
    assert rewrite_prefix(question, random.Random(0)) == question


def test_augment_question_composes():
    rng = random.Random(5)
    results = {augment_question(QUESTION, rng) for _ in range(10)}
    assert len(results) > 1


def test_augment_pairs_keeps_sql_and_marks_source():
    pairs = [
        NLSQLPair(question=QUESTION, sql="SELECT AVG(z) FROM specobj", db_id="d", source="synth")
    ]
    augmented = augment_pairs(pairs, factor=3, seed=9)
    assert 1 <= len(augmented) <= 3
    for pair in augmented:
        assert pair.sql == "SELECT AVG(z) FROM specobj"
        assert pair.source == "synth+dbpal"
        assert pair.question != QUESTION


def test_augment_pairs_deterministic():
    pairs = [NLSQLPair(question=QUESTION, sql="SELECT 1 FROM t", db_id="d")]
    a = augment_pairs(pairs, factor=2, seed=11)
    b = augment_pairs(pairs, factor=2, seed=11)
    assert [p.question for p in a] == [p.question for p in b]


def test_augment_pairs_rejects_bad_factor():
    with pytest.raises(ValueError):
        augment_pairs([], factor=0)


def test_augmented_questions_remain_judgeable(mini_enhanced):
    """Meaning preservation: the equivalence judge must keep accepting the
    augmented questions it accepted before augmentation."""
    from repro.metrics import EquivalenceJudge

    sql = "SELECT AVG(z) FROM specobj WHERE class = 'GALAXY'"
    question = (
        "Find the average redshift of spectroscopic objects whose "
        "spectroscopic class is GALAXY."
    )
    judge = EquivalenceJudge(mini_enhanced)
    assert judge.judge(question, sql).equivalent
    rng = random.Random(13)
    accepted = 0
    for _ in range(10):
        augmented = augment_question(question, rng)
        accepted += judge.judge(augmented, sql).equivalent
    assert accepted >= 8
