"""The static-analysis framework (repro.checks) and the lock-order monitor.

Every rule gets a true-positive fixture (it must fire) and a negative
(the compliant idiom must not fire); the suppression machinery, the JSON
report shape and the runtime lock-order detector are covered separately.
The meta-test at the bottom is the repo's own gate: ``sciencebenchmark
check`` must be clean on the shipped source.
"""

from __future__ import annotations

import json
import textwrap
import threading

import pytest

from repro import cli
from repro.analysis.diagnostics import Severity
from repro.checks import lockorder
from repro.checks.engine import FileChecker, apply_suppressions, parse_suppressions
from repro.checks.lockorder import LockOrderMonitor, LockOrderViolation, MonitoredLock
from repro.checks.report import render_json
from repro.checks.runner import ALL_RULES, run_checks, select_rules


def check(source: str, path: str = "repro/nl2sql/example.py", select=None):
    """Run the (selected) rules over inline source; suppressions applied."""
    rules = select_rules(select)
    raw, sups = FileChecker(path, textwrap.dedent(source), rules).run()
    kept, meta = apply_suppressions(raw, sups, path)
    return kept + meta


def fired(findings, rule_id: str) -> list:
    return [f for f in findings if f.rule == rule_id]


# -- determinism rules ------------------------------------------------------------


def test_wall_clock_flags_time_reads():
    findings = check("import time\nt = time.perf_counter()\n")
    assert fired(findings, "det.wall-clock")


def test_wall_clock_flags_datetime_now():
    findings = check("from datetime import datetime\nstamp = datetime.now()\n")
    assert fired(findings, "det.wall-clock")


def test_wall_clock_allows_the_clock_module():
    findings = check(
        "import time\nt = time.monotonic()\n",
        path="repro/resilience/clock.py",
    )
    assert not fired(findings, "det.wall-clock")


def test_wall_clock_ignores_injected_clock_calls():
    findings = check("start = clock.now()\n")
    assert not fired(findings, "det.wall-clock")


def test_unseeded_random_flags_module_rng():
    findings = check("import random\nx = random.choice([1, 2])\n")
    assert fired(findings, "det.unseeded-random")


def test_unseeded_random_flags_seedless_random():
    findings = check("import random\nrng = random.Random()\n")
    assert fired(findings, "det.unseeded-random")


def test_unseeded_random_allows_seeded_streams():
    findings = check("import random\nrng = random.Random(derive_seed(7, 'x'))\n")
    assert not fired(findings, "det.unseeded-random")


def test_env_read_flags_environ_and_getenv():
    findings = check("import os\na = os.environ.get('X')\nb = os.getenv('Y')\n")
    assert len(fired(findings, "det.env-read")) == 2


def test_env_read_allows_the_cli():
    findings = check("import os\na = os.environ.get('X')\n", path="repro/cli.py")
    assert not fired(findings, "det.env-read")


def test_set_iteration_flags_for_list_and_join():
    findings = check(
        """
        for item in set(items):
            use(item)
        ordered = list({1, 2, 3})
        text = ",".join({a for a in items})
        """
    )
    assert len(fired(findings, "det.set-iteration")) == 3


def test_set_iteration_allows_sorted():
    findings = check(
        """
        for item in sorted(set(items)):
            use(item)
        ordered = sorted({1, 2, 3})
        """
    )
    assert not fired(findings, "det.set-iteration")


# -- concurrency rules ------------------------------------------------------------

LOCKED_CLASS = """
import threading

class Shared:
    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0
        self.items = []

    def bump(self):
        {body}
"""


def locked_class(body: str):
    return check(
        LOCKED_CLASS.format(body=body), path="repro/runtime/example.py"
    )


def test_unlocked_mutation_flags_bare_assign_and_append():
    findings = locked_class("self.value += 1; self.items.append(1)")
    assert len(fired(findings, "con.unlocked-mutation")) == 2


def test_unlocked_mutation_allows_with_lock():
    findings = locked_class(
        "with self._lock:\n            self.value += 1"
    )
    assert not fired(findings, "con.unlocked-mutation")


def test_unlocked_mutation_exempts_locked_suffix_methods():
    source = LOCKED_CLASS.format(body="pass") + (
        "    def _bump_locked(self):\n        self.value += 1\n"
    )
    findings = check(source, path="repro/runtime/example.py")
    assert not fired(findings, "con.unlocked-mutation")


def test_unlocked_mutation_needs_a_lock_owning_class():
    findings = check(
        """
        class Plain:
            def bump(self):
                self.value = 1
        """,
        path="repro/runtime/example.py",
    )
    assert not fired(findings, "con.unlocked-mutation")


def test_unlocked_mutation_only_in_concurrent_packages():
    findings = locked_class("self.value += 1")
    assert fired(findings, "con.unlocked-mutation")
    outside = check(
        LOCKED_CLASS.format(body="self.value += 1"),
        path="repro/nl2sql/example.py",
    )
    assert not fired(outside, "con.unlocked-mutation")


def test_blocking_async_flags_open_sleep_result_shutdown():
    findings = check(
        """
        async def serve(executor, future):
            handle = open("data.txt")
            time.sleep(0.1)
            value = future.result()
            executor.shutdown(wait=True)
        """
    )
    assert len(fired(findings, "con.blocking-async")) == 4


def test_blocking_async_allows_awaited_and_offloaded():
    findings = check(
        """
        async def serve(executor):
            await asyncio.sleep(0.1)
            await loop.run_in_executor(None, executor.shutdown)
        """
    )
    assert not fired(findings, "con.blocking-async")


def test_contextvar_leak_flags_discarded_token():
    findings = check(
        """
        from contextvars import ContextVar
        CURRENT = ContextVar("current")

        def enter(value):
            CURRENT.set(value)
        """
    )
    assert fired(findings, "con.contextvar-leak")


def test_contextvar_leak_allows_kept_token():
    findings = check(
        """
        from contextvars import ContextVar
        CURRENT = ContextVar("current")

        def enter(value):
            token = CURRENT.set(value)
            return token
        """
    )
    assert not fired(findings, "con.contextvar-leak")


# -- hygiene rules ----------------------------------------------------------------


def test_bare_except_flags():
    findings = check("try:\n    work()\nexcept:\n    pass\n")
    assert fired(findings, "hyg.bare-except")


def test_broad_except_warns_without_binding():
    findings = check("try:\n    work()\nexcept Exception:\n    pass\n")
    hits = fired(findings, "hyg.broad-except")
    assert hits and hits[0].severity is Severity.WARNING


def test_broad_except_allows_binding_or_reraise():
    findings = check(
        """
        try:
            work()
        except Exception as exc:
            record(type(exc).__name__)
        try:
            work()
        except Exception:
            raise
        """
    )
    assert not fired(findings, "hyg.broad-except")


def test_swallowed_cancel_flags_async_baseexception():
    findings = check(
        """
        async def worker():
            try:
                await step()
            except BaseException:
                pass
        """
    )
    assert fired(findings, "hyg.swallowed-cancel")


def test_swallowed_cancel_allows_reraise_and_sync_code():
    findings = check(
        """
        async def worker():
            try:
                await step()
            except BaseException:
                cleanup()
                raise

        def sync_worker():
            try:
                step()
            except BaseException as exc:
                record(exc)
        """
    )
    assert not fired(findings, "hyg.swallowed-cancel")


def test_mutable_default_flags_literals_and_constructors():
    findings = check(
        "def f(a=[], b={}, *, c=set(), d=dict()):\n    return a, b, c, d\n"
    )
    assert len(fired(findings, "hyg.mutable-default")) == 4


def test_mutable_default_allows_none():
    findings = check("def f(a=None, b=()):\n    return a, b\n")
    assert not fired(findings, "hyg.mutable-default")


# -- suppressions -----------------------------------------------------------------


def test_justified_suppression_silences_the_finding():
    findings = check(
        "import os\n"
        "a = os.environ.get('X')  # checks: ignore[det.env-read] -- fixture\n"
    )
    assert not findings


def test_suppression_on_the_line_above_counts():
    findings = check(
        "import os\n"
        "# checks: ignore[det.env-read] -- fixture\n"
        "a = os.environ.get('X')\n"
    )
    assert not findings


def test_unjustified_suppression_is_an_error():
    findings = check(
        "import os\na = os.environ.get('X')  # checks: ignore[det.env-read]\n"
    )
    hits = fired(findings, "checks.unjustified-suppression")
    assert hits and hits[0].severity is Severity.ERROR
    assert not fired(findings, "det.env-read")


def test_useless_suppression_is_a_warning():
    findings = check("a = 1  # checks: ignore[det.env-read] -- stale\n")
    hits = fired(findings, "checks.useless-suppression")
    assert hits and hits[0].severity is Severity.WARNING


def test_suppression_for_unselected_rule_is_not_stale(tmp_path):
    target = tmp_path / "repro" / "mod.py"
    target.parent.mkdir()
    target.write_text(
        "try:\n"
        "    work()\n"
        "# checks: ignore[hyg.broad-except] -- fixture\n"
        "except Exception:\n"
        "    pass\n"
    )
    scoped = run_checks([str(tmp_path)], select=["det"])
    assert scoped.findings == []
    full = run_checks([str(tmp_path)])
    assert [f.rule for f in full.findings] == []


def test_marker_inside_a_string_is_not_a_suppression():
    source = 'DOC = "example: # checks: ignore[det.env-read] -- how-to"\n'
    assert parse_suppressions(source) == []


# -- reports and selection --------------------------------------------------------


def test_json_report_schema(tmp_path):
    bad = tmp_path / "repro" / "sub"
    bad.mkdir(parents=True)
    (bad / "bad.py").write_text("import os\nx = os.getenv('X')\n")
    report = run_checks([str(tmp_path)])
    payload = json.loads(render_json(report))
    assert payload["tool"] == "checks"
    assert payload["files_scanned"] == 1
    assert payload["rules"] == sorted(rule.id for rule in ALL_RULES)
    assert payload["summary"] == {"errors": 1, "warnings": 0, "total": 1}
    (finding,) = payload["findings"]
    assert finding["rule"] == "det.env-read"
    assert finding["severity"] == "error"
    assert finding["file"].endswith("repro/sub/bad.py")
    assert finding["line"] == 2


def test_select_rules_by_pack_and_id():
    assert [r.id for r in select_rules(["det"])] == [
        "det.wall-clock", "det.unseeded-random", "det.env-read",
        "det.set-iteration",
    ]
    assert [r.id for r in select_rules(["hyg.bare-except"])] == ["hyg.bare-except"]
    with pytest.raises(ValueError):
        select_rules(["not-a-rule"])


# -- lock-order monitor -----------------------------------------------------------


@pytest.fixture
def monitor():
    previous = lockorder.uninstall()
    installed = lockorder.install(strict=False)
    yield installed
    lockorder.uninstall()
    if previous is not None:
        lockorder._MONITOR = previous


def test_new_lock_is_plain_when_monitoring_is_off():
    previous = lockorder.uninstall()
    try:
        assert not isinstance(lockorder.new_lock("x"), MonitoredLock)
    finally:
        if previous is not None:
            lockorder._MONITOR = previous


def test_consistent_order_is_clean(monitor):
    a = lockorder.new_lock("a")
    b = lockorder.new_lock("b")
    for _ in range(2):
        with a:
            with b:
                pass
    assert monitor.edges() == {"a": {"b"}}
    assert ("a", "b") in monitor.observed
    monitor.assert_clean()


def test_ab_ba_cycle_is_detected(monitor):
    a = lockorder.new_lock("a")
    b = lockorder.new_lock("b")
    with a:
        with b:
            pass
    with b:
        with a:
            pass
    assert monitor.violations
    violation = monitor.violations[0]
    assert (violation.name, violation.held) == ("a", "b")
    with pytest.raises(LockOrderViolation):
        monitor.assert_clean()


def test_cross_thread_cycle_is_detected(monitor):
    a = lockorder.new_lock("a")
    b = lockorder.new_lock("b")

    def forward():
        with a:
            with b:
                pass

    thread = threading.Thread(target=forward)
    thread.start()
    thread.join()
    with b:
        with a:
            pass
    assert monitor.violations


def test_strict_mode_raises_at_the_acquisition():
    previous = lockorder.uninstall()
    strict = lockorder.install(strict=True)
    try:
        a = lockorder.new_lock("a")
        b = lockorder.new_lock("b")
        with a:
            with b:
                pass
        with pytest.raises(LockOrderViolation):
            with b:
                with a:
                    pass
    finally:
        lockorder.uninstall()
        if previous is not None:
            lockorder._MONITOR = previous
    assert strict.violations


def test_monitored_lock_tracks_state(monitor):
    lock = lockorder.new_lock("solo")
    assert isinstance(lock, MonitoredLock)
    assert not lock.locked()
    with lock:
        assert lock.locked()
    assert not lock.locked()
    assert lock.acquire(blocking=False)
    # A failed try-lock from another thread rolls its held-stack entry back.
    probe: list[bool] = []
    thread = threading.Thread(
        target=lambda: probe.append(lock.acquire(blocking=False))
    )
    thread.start()
    thread.join()
    assert probe == [False]
    lock.release()
    monitor.assert_clean()


def test_instrumented_repo_locks_report(monitor):
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    registry.inc("requests")
    registry.observe("latency", 0.01)
    monitor.assert_clean()


# -- the repo gates itself --------------------------------------------------------


def test_repo_source_is_clean():
    report = run_checks()
    assert report.findings == [], "\n".join(
        finding.render() for finding in report.findings
    )


def test_check_command_exits_zero(capsys):
    assert cli.main(["check"]) == 0
    assert "clean" in capsys.readouterr().out


def test_check_command_fails_on_violations(tmp_path, capsys):
    bad = tmp_path / "repro" / "bad.py"
    bad.parent.mkdir()
    bad.write_text("import time\nt = time.time()\n")
    assert cli.main(["check", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "det.wall-clock" in out


def test_check_command_json_format(tmp_path, capsys):
    bad = tmp_path / "repro" / "bad.py"
    bad.parent.mkdir()
    bad.write_text("def f(x=[]):\n    return x\n")
    assert cli.main(["check", str(bad), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["errors"] == 1
    assert payload["findings"][0]["rule"] == "hyg.mutable-default"


def test_check_command_rejects_unknown_rule(capsys):
    assert cli.main(["check", "--select", "nope"]) == 2
