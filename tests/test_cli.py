"""Tests for the command-line interface (against a tiny monkeypatched suite)."""

import pytest

from repro import cli
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import BenchmarkSuite


@pytest.fixture()
def tiny_suite(monkeypatch):
    config = ExperimentConfig(
        name="tiny-cli",
        seed=7,
        domain_scale=0.15,
        spider_train_per_db=10,
        spider_dev_per_db=4,
        synth_targets={"cordis": 30, "sdss": 30, "oncomx": 30},
        synth_spider_per_db=4,
        table3_sample=8,
        table4_sample=20,
        dev_limit=10,
    )
    suite = BenchmarkSuite(config)
    monkeypatch.setattr("repro.experiments.runner.get_suite", lambda preset="quick": suite)
    return suite


def test_stats_command(tiny_suite, capsys):
    assert cli.main(["stats"]) == 0
    out = capsys.readouterr().out
    assert "cordis" in out and "minispider" in out


def test_tables_command_fast_tables(tiny_suite, capsys):
    assert cli.main(["tables", "1", "2", "4"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "Table 2" in out and "Table 4" in out


def test_tables_command_rejects_unknown(tiny_suite, capsys):
    assert cli.main(["tables", "9"]) == 2


def test_figures_command(tiny_suite, capsys):
    assert cli.main(["figures"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out and "Figure 2" in out


def test_augment_command_writes_json(tiny_suite, tmp_path, capsys):
    out_file = tmp_path / "synth.json"
    assert cli.main(["augment", "sdss", "--out", str(out_file)]) == 0
    assert out_file.exists()
    from repro.datasets.records import Split

    split = Split.from_json(out_file)
    assert len(split) > 0


def test_lint_command(tiny_suite, capsys):
    assert cli.main(["lint", "cordis"]) == 0
    out = capsys.readouterr().out
    assert "cordis" in out and "queries linted" in out


def test_lint_command_rejects_unknown_domain(tiny_suite, capsys):
    assert cli.main(["lint", "nope"]) == 2


def test_requires_command():
    with pytest.raises(SystemExit):
        cli.main([])
