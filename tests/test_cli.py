"""Tests for the command-line interface (against a tiny monkeypatched suite)."""

import pytest

from repro import cli
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import BenchmarkSuite


@pytest.fixture()
def tiny_suite(monkeypatch):
    config = ExperimentConfig(
        name="tiny-cli",
        seed=7,
        domain_scale=0.15,
        spider_train_per_db=10,
        spider_dev_per_db=4,
        synth_targets={"cordis": 30, "sdss": 30, "oncomx": 30},
        synth_spider_per_db=4,
        table3_sample=8,
        table4_sample=20,
        dev_limit=10,
    )
    suite = BenchmarkSuite(config)
    monkeypatch.setattr(cli, "_build_suite", lambda args: suite)
    return suite


def test_stats_command(tiny_suite, capsys):
    assert cli.main(["stats"]) == 0
    out = capsys.readouterr().out
    assert "cordis" in out and "minispider" in out


def test_tables_command_fast_tables(tiny_suite, capsys):
    assert cli.main(["tables", "1", "2", "4"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "Table 2" in out and "Table 4" in out


def test_tables_command_rejects_unknown(tiny_suite, capsys):
    assert cli.main(["tables", "9"]) == 2


def test_figures_command(tiny_suite, capsys):
    assert cli.main(["figures"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out and "Figure 2" in out


def test_augment_command_writes_json(tiny_suite, tmp_path, capsys):
    out_file = tmp_path / "synth.json"
    assert cli.main(["augment", "--domain", "sdss", "--out", str(out_file)]) == 0
    assert out_file.exists()
    from repro.datasets.records import Split

    split = Split.from_json(out_file)
    assert len(split) > 0


def test_serve_bench_command(tiny_suite, tmp_path, capsys):
    import json

    out_file = tmp_path / "bench.json"
    argv = [
        "serve-bench", "--domain", "sdss", "--concurrency", "4",
        "--repeat", "2", "--limit", "12", "--out", str(out_file),
    ]
    assert cli.main(argv) == 0
    report = json.loads(out_file.read_text())
    assert set(report["arms"]) == {"unbatched", "batched"}
    assert report["stream"]["domains"] == ["sdss"]
    out = capsys.readouterr().out
    assert "speedup" in out
    # Same suite, now memoized: an unreachable speedup floor must fail.
    assert cli.main(argv + ["--assert-speedup", "999"]) == 1


def test_serve_bench_fleet_command(tiny_suite, tmp_path, capsys):
    import json

    out_file = tmp_path / "fleet.json"
    argv = [
        "serve-bench", "--domain", "sdss", "--concurrency", "4",
        "--repeat", "2", "--limit", "12", "--replicas", "2",
        "--qps", "200", "--tenants", "2", "--soak-requests", "8",
        "--out", str(out_file),
    ]
    assert cli.main(argv) == 0
    report = json.loads(out_file.read_text())
    assert set(report["arms"]) == {"unbatched", "batched", "fleet", "soak"}
    assert report["fleet_identity"]["identical"]
    assert set(report["arms"]["soak"]["tenants"]["per_tenant"]) == {"t0", "t1"}
    out = capsys.readouterr().out
    assert "fleet" in out


def test_serve_bench_rejects_unknown_domain(tiny_suite, capsys):
    assert cli.main(["serve-bench", "--domain", "nope"]) == 2
    err = capsys.readouterr().err
    assert "unknown domain" in err and "cordis" in err


def test_lint_command(tiny_suite, capsys):
    assert cli.main(["lint", "--domain", "cordis"]) == 0
    out = capsys.readouterr().out
    assert "cordis" in out and "queries linted" in out


def test_lint_command_rejects_unknown_domain(tiny_suite, capsys):
    assert cli.main(["lint", "--domain", "nope"]) == 2


def test_augment_requires_exactly_one_domain(tiny_suite, capsys):
    assert cli.main(["augment"]) == 2
    assert cli.main(["augment", "--domain", "sdss", "--domain", "cordis"]) == 2


def test_augment_command_with_overrides(tiny_suite, tmp_path, capsys):
    out_file = tmp_path / "synth-small.json"
    code = cli.main(
        [
            "augment", "--domain", "sdss", "--target", "12", "--seed", "5",
            "--out", str(out_file),
        ]
    )
    assert code == 0
    from repro.datasets.records import Split

    split = Split.from_json(out_file)
    assert 0 < len(split)


def test_timings_flag_reports_runtime(tiny_suite, capsys):
    assert cli.main(["--timings", "tables", "1"]) == 0
    err = capsys.readouterr().err
    assert "runtime:" in err and "computed=" in err


def test_build_suite_wires_runtime_flags(tmp_path):
    args = cli._parser().parse_args(
        ["--workers", "3", "--cache-dir", str(tmp_path / "c"), "tables"]
    )
    suite = cli._build_suite(args)
    assert suite.runtime.workers == 3
    assert suite.runtime.cache.enabled
    assert str(suite.runtime.cache.root) == str(tmp_path / "c")

    args = cli._parser().parse_args(["--no-cache", "stats"])
    suite = cli._build_suite(args)
    assert not suite.runtime.cache.enabled


def test_requires_command():
    with pytest.raises(SystemExit):
        cli.main([])
