"""Tests for the experiment configuration presets and suite plumbing."""

import pytest

from repro.experiments.config import ExperimentConfig, full, quick
from repro.experiments.runner import SYSTEM_CLASSES, BenchmarkSuite


def test_quick_preset_defaults():
    config = quick()
    assert config.name == "quick"
    assert 0 < config.domain_scale <= 1.0
    assert set(config.synth_targets) == {"cordis", "sdss", "oncomx"}


def test_full_preset_matches_paper_synth_sizes():
    config = full()
    assert config.synth_targets == {"cordis": 1306, "sdss": 2061, "oncomx": 1065}
    assert config.domain_scale == 1.0
    assert config.table3_sample == 175  # 7 experts x 25 samples in the paper


def test_config_is_frozen():
    config = quick()
    with pytest.raises(AttributeError):  # dataclasses.FrozenInstanceError
        config.seed = 1


def test_config_domains_drive_suite_domain_names():
    import dataclasses

    config = dataclasses.replace(quick(), domains=("sdss",))
    suite = BenchmarkSuite(config)
    assert suite.domain_names() == ("sdss",)


def test_system_registry_names():
    assert set(SYSTEM_CLASSES) == {"valuenet", "t5-large", "smbop"}
    for name, cls in SYSTEM_CLASSES.items():
        assert cls.name == name


def test_dev_limit_caps_pairs():
    config = ExperimentConfig(
        name="cap-test",
        domain_scale=0.1,
        spider_train_per_db=4,
        spider_dev_per_db=2,
        synth_targets={"sdss": 10},
        dev_limit=5,
    )
    suite = BenchmarkSuite(config)
    assert len(suite.dev_pairs("sdss")) == 5
    assert len(suite.dev_pairs(None)) <= 5


def test_suite_rng_is_salted_and_stable():
    suite = BenchmarkSuite(quick())
    a = suite.rng("salt").random()
    b = suite.rng("salt").random()
    c = suite.rng("other").random()
    assert a == b
    assert a != c
