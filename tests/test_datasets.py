"""Tests for the three ScienceBenchmark domains and the data containers."""

import random

import pytest

from repro.datasets import cordis, oncomx, sdss
from repro.datasets.programs import Program, expand_programs
from repro.datasets.records import NLSQLPair, Split


@pytest.fixture(scope="module")
def domains(sdss_domain):
    return {
        "sdss": sdss_domain,
        "cordis": cordis.build(scale=0.2),
        "oncomx": oncomx.build(scale=0.2),
    }


#: Structural figures the paper reports in Table 1 — these must be exact.
PAPER_STRUCTURE = {"cordis": (19, 82), "sdss": (6, 61), "oncomx": (25, 106)}


@pytest.mark.parametrize("name", list(PAPER_STRUCTURE))
def test_structure_matches_paper_exactly(domains, name):
    tables, columns = PAPER_STRUCTURE[name]
    schema = domains[name].database.schema
    assert len(schema.tables) == tables
    assert schema.total_columns() == columns


@pytest.mark.parametrize("name", ["cordis", "sdss", "oncomx"])
def test_all_gold_sql_executes(domains, name):
    assert domains[name].validate_gold_sql() == []


@pytest.mark.parametrize("name", ["cordis", "sdss", "oncomx"])
def test_gold_queries_mostly_nonempty(domains, name):
    """Expert questions about a populated database should usually return
    rows — an empty result suggests a value that does not exist."""
    domain = domains[name]
    nonempty = 0
    total = 0
    for split in (domain.seed, domain.dev):
        for pair in split:
            total += 1
            result = domain.database.execute(pair.sql)
            nonempty += bool(result.rows)
    assert nonempty / total > 0.8


@pytest.mark.parametrize("name", ["cordis", "sdss", "oncomx"])
def test_referential_integrity(domains, name):
    database = domains[name].database
    for fk in database.schema.foreign_keys:
        child = set(database.table(fk.table).column_values(fk.column))
        child.discard(None)
        parent = set(database.table(fk.ref_table).column_values(fk.ref_column))
        assert child <= parent, f"dangling FK {fk.table}.{fk.column}"


@pytest.mark.parametrize("name", ["cordis", "sdss", "oncomx"])
def test_builds_are_deterministic(name):
    builder = {"cordis": cordis, "sdss": sdss, "oncomx": oncomx}[name]
    a = builder.build(scale=0.1)
    b = builder.build(scale=0.1)
    assert a.database.row_count() == b.database.row_count()
    assert [p.sql for p in a.seed] == [p.sql for p in b.seed]
    table = a.database.schema.tables[0].name
    assert a.database.table(table).rows == b.database.table(table).rows


def test_scale_changes_row_counts():
    small = sdss.build(scale=0.1)
    large = sdss.build(scale=0.4)
    assert large.database.row_count() > small.database.row_count()


def test_dev_skews_harder_than_seed(domains):
    """Table 2's SDSS pattern: the Dev set carries more hard+extra mass."""
    domain = domains["sdss"]

    def hard_share(split):
        counts = split.hardness_counts()
        return (counts["hard"] + counts["extra"]) / len(split)

    assert hard_share(domain.dev) > hard_share(domain.seed)


def test_oncomx_is_easiest_domain(domains):
    """Table 2: OncoMX queries skew easier (no extra-hard seeds to speak of)."""
    counts = domains["oncomx"].seed.hardness_counts()
    assert counts["extra"] <= 2


def test_seed_and_dev_share_no_questions(domains):
    for domain in domains.values():
        seed_questions = {p.question for p in domain.seed}
        dev_questions = {p.question for p in domain.dev}
        assert not seed_questions & dev_questions


def test_nominal_stats_present(domains):
    for name, domain in domains.items():
        stats = domain.nominal_stats
        assert stats["tables"] == PAPER_STRUCTURE[name][0]
        assert stats["columns"] == PAPER_STRUCTURE[name][1]
        assert stats["rows"] > 100_000


# --- containers -------------------------------------------------------------------


def test_pair_hardness_cached():
    pair = NLSQLPair(question="q", sql="SELECT a FROM t", db_id="d")
    assert pair.hardness == "easy"
    assert pair.to_dict()["hardness"] == "easy"


def test_pair_round_trips_through_dict():
    pair = NLSQLPair(question="q", sql="SELECT a FROM t", db_id="d", source="seed")
    again = NLSQLPair.from_dict(pair.to_dict())
    assert again == pair


def test_split_json_round_trip(tmp_path):
    split = Split(
        name="s",
        pairs=[NLSQLPair(question="q", sql="SELECT a FROM t", db_id="d")],
    )
    path = tmp_path / "split.json"
    split.to_json(path)
    loaded = Split.from_json(path)
    assert loaded.name == "s"
    assert loaded.pairs == split.pairs


def test_stratified_sampling_respects_distribution():
    pairs = [
        NLSQLPair(question=f"e{i}", sql="SELECT a FROM t", db_id="d")
        for i in range(80)
    ] + [
        NLSQLPair(
            question=f"m{i}",
            sql="SELECT a, b FROM t WHERE c = 1",
            db_id="d",
        )
        for i in range(20)
    ]
    split = Split(name="s", pairs=pairs)
    sample = split.sample_stratified(50, random.Random(0))
    assert len(sample) == 50
    easy = sum(1 for p in sample if p.hardness == "easy")
    assert 35 <= easy <= 45  # ~80% of 50


def test_program_expansion_alternates_splits():
    program = Program(
        nl=("seed {v}.", "dev {v}."),
        sql="SELECT a FROM t WHERE b = {v}",
        params={"v": (1, 2, 3, 4)},
    )
    seed_pairs, dev_pairs = expand_programs([program], db_id="d")
    assert len(seed_pairs) == 2 and len(dev_pairs) == 2
    assert all(p.question.startswith("seed") for p in seed_pairs)
    assert all(p.question.startswith("dev") for p in dev_pairs)


def test_program_only_seed():
    program = Program(
        nl=("s {v}.", ""), sql="SELECT a FROM t WHERE b = {v}", params={"v": (1, 2)},
        only="seed",
    )
    seed_pairs, dev_pairs = expand_programs([program], db_id="d")
    assert len(seed_pairs) == 2 and dev_pairs == []
