"""Tests for differential execution (repro.engine.backends + diffexec)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.engine.backends import (
    ExecutionBackend,
    available_backends,
    get_backend,
)
from repro.engine.backends.native import NativeBackend
from repro.engine.backends.sqlite import SqliteBackend
from repro.engine.diffexec import (
    ALL_SPLITS,
    GOLD_SPLITS,
    run_diff_exec,
    write_reports,
)
from repro.engine.executor import Result
from repro.errors import ExecutionError

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def climate_domain():
    import sys

    from repro import adapters

    # Force a fresh import so the build callable is this file's, regardless
    # of what other test modules loaded earlier.
    sys.modules.pop("repro_adapter_climate_adapter", None)
    module = adapters.load_adapter_source(
        str(REPO_ROOT / "examples" / "climate_adapter.py")
    )
    adapters.unregister("climate")  # the import self-registers; keep it clean
    yield module.build(scale=0.5, seed=7)
    sys.modules.pop("repro_adapter_climate_adapter", None)


# -- backend plumbing -----------------------------------------------------------


def test_backend_registry():
    assert available_backends() == ("native", "sqlite", "vector")
    assert isinstance(get_backend("sqlite"), SqliteBackend)
    assert isinstance(get_backend("native"), NativeBackend)
    with pytest.raises(ExecutionError, match="unknown execution backend"):
        get_backend("postgres")


def test_native_backend_requires_load():
    backend = NativeBackend()
    with pytest.raises(ExecutionError, match="no database loaded"):
        backend.execute("SELECT 1")


def test_sqlite_backend_executes_and_reports_errors(climate_domain):
    with get_backend("sqlite") as backend:
        backend.load(climate_domain.database)
        result = backend.execute("SELECT COUNT(*) FROM station")
        expected = len(climate_domain.database.table("station").rows)
        assert result.rows[0][0] == expected
        with pytest.raises(ExecutionError, match="sqlite"):
            backend.execute("SELECT nope FROM missing_table")
        assert backend.try_execute("SELECT nope FROM missing_table") is None


# -- agreement on gold queries --------------------------------------------------


def test_gold_queries_agree_on_toy_domain(climate_domain):
    report = run_diff_exec(climate_domain, backend="sqlite")
    assert report.agreed
    assert report.n_queries == len(climate_domain.seed) + len(climate_domain.dev)
    assert report.n_divergences == 0
    assert set(report.per_split) == set(GOLD_SPLITS)
    assert "diffexec.queries" in report.metrics


def test_gold_queries_agree_on_builtin_domain():
    from repro import adapters

    domain = adapters.get_adapter("oncomx").build(scale=0.1)
    report = run_diff_exec(domain, backend="sqlite")
    assert report.agreed, report.render()


def test_missing_synth_split_is_noted_not_fatal(climate_domain):
    report = run_diff_exec(climate_domain, backend="sqlite", splits=ALL_SPLITS)
    assert report.agreed
    assert report.per_split["synth"].get("skipped")


# -- intentional divergence -----------------------------------------------------


class _RowDroppingBackend(ExecutionBackend):
    """A sabotaged sqlite backend: silently drops the last row of every
    non-empty result.  Exists to prove diff-exec actually catches
    divergences instead of vacuously agreeing."""

    name = "dropping-sqlite"

    def __init__(self) -> None:
        self._inner = SqliteBackend()

    def load(self, database) -> None:
        self._inner.load(database)

    def execute(self, sql: str) -> Result:
        result = self._inner.execute(sql)
        if result.rows:
            return Result(columns=result.columns, rows=result.rows[:-1])
        return result

    def close(self) -> None:
        self._inner.close()


def test_sabotaged_backend_is_caught(climate_domain):
    report = run_diff_exec(climate_domain, backend=_RowDroppingBackend())
    assert not report.agreed
    assert report.n_divergences > 0
    kinds = {d.kind for d in report.divergences}
    assert kinds == {"result-mismatch"}
    one = report.divergences[0]
    assert one.domain == "climate"
    assert one.engine_rows is not None and one.backend_rows is not None
    assert one.engine_rows == one.backend_rows + 1
    rendered = report.render()
    assert "DIVERGE" in rendered


class _ErroringBackend(ExecutionBackend):
    """Rejects every query — each one must surface as a backend-error."""

    name = "erroring"

    def load(self, database) -> None:
        pass

    def execute(self, sql: str) -> Result:
        raise ExecutionError("synthetic failure")


def test_backend_errors_surface_as_divergences(climate_domain):
    report = run_diff_exec(climate_domain, backend=_ErroringBackend())
    assert not report.agreed
    assert {d.kind for d in report.divergences} == {"backend-error"}
    assert all("synthetic failure" in d.detail for d in report.divergences)


# -- report serialization -------------------------------------------------------


def test_write_reports_json(climate_domain, tmp_path):
    good = run_diff_exec(climate_domain, backend="sqlite")
    bad = run_diff_exec(climate_domain, backend=_RowDroppingBackend())
    path = write_reports([good, bad], tmp_path / "reports" / "diffexec.json")
    payload = json.loads(path.read_text())
    assert payload["schema_version"] == 1
    assert payload["agreed"] is False
    assert len(payload["reports"]) == 2
    entry = payload["reports"][1]
    assert entry["backend"] == "dropping-sqlite"
    assert entry["n_divergences"] == len(entry["divergences"]) > 0
    sample = entry["divergences"][0]
    assert {"domain", "split", "question", "sql", "kind", "detail"} <= set(sample)


# -- the CLI subcommand ---------------------------------------------------------


def test_diff_exec_cli_gold(tmp_path, capsys):
    import sys

    from repro import adapters, cli

    sys.modules.pop("repro_adapter_climate_adapter", None)
    out_file = tmp_path / "diffexec.json"
    code = cli.main(
        [
            "diff-exec",
            "--adapter", str(REPO_ROOT / "examples" / "climate_adapter.py"),
            "--domain", "climate",
            "--out", str(out_file),
        ]
    )
    try:
        assert code == 0
        out = capsys.readouterr().out
        assert "diff-exec[climate]" in out and "0 divergences" in out
        payload = json.loads(out_file.read_text())
        assert payload["agreed"] is True
    finally:
        adapters.unregister("climate")
        import sys

        sys.modules.pop("repro_adapter_climate_adapter", None)
