"""Unit tests for the hashed sentence embeddings and geometric-median
selection (Phase 4's mathematical core, Eq. 1)."""

import numpy as np
import pytest

from repro.embeddings import (
    SentenceEmbedder,
    cosine_similarity,
    embed,
    geometric_median_ranking,
    select_top_k,
)


def test_embeddings_are_unit_norm():
    vector = embed("find all starburst galaxies")
    assert np.linalg.norm(vector) == pytest.approx(1.0)


def test_empty_sentence_is_zero_vector():
    assert np.linalg.norm(embed("")) == 0.0


def test_embeddings_deterministic_across_instances():
    a = SentenceEmbedder().embed("the redshift of galaxies")
    b = SentenceEmbedder().embed("the redshift of galaxies")
    assert np.allclose(a, b)


def test_dimension_configurable():
    embedder = SentenceEmbedder(dim=128)
    assert embedder.embed("hello world").shape == (128,)
    with pytest.raises(ValueError):
        SentenceEmbedder(dim=0)


def test_embed_all_shape():
    embedder = SentenceEmbedder(dim=64)
    matrix = embedder.embed_all(["a b c", "d e f", "g h i"])
    assert matrix.shape == (3, 64)
    assert embedder.embed_all([]).shape == (0, 64)


def test_cosine_similarity_bounds():
    a = embed("find the galaxies with high redshift")
    b = embed("show galaxies whose redshift is high")
    assert -1.0 <= cosine_similarity(a, b) <= 1.0


def test_cosine_zero_vector_is_zero():
    assert cosine_similarity(np.zeros(8), np.ones(8)) == 0.0


def test_geometric_median_picks_consensus():
    """Four paraphrases plus one outlier: the outlier must rank last."""
    candidates = [
        "find the redshift of all galaxies",
        "show the redshift of galaxies",
        "what is the redshift of the galaxies",
        "give me the redshift of every galaxy",
        "count the members of french institutions",  # outlier
    ]
    embedder = SentenceEmbedder()
    ranking = geometric_median_ranking(embedder.embed_all(candidates))
    assert ranking[-1] == 4


def test_geometric_median_deterministic_ties():
    matrix = np.stack([np.ones(4), np.ones(4), np.ones(4)])
    assert geometric_median_ranking(matrix) == [0, 1, 2]


def test_geometric_median_empty():
    assert geometric_median_ranking(np.zeros((0, 8))) == []


def test_select_top_k_filters_outlier():
    candidates = [
        "find the redshift of all galaxies",
        "show the redshift of galaxies",
        "list the redshift of the galaxies",
        "count the french institutions by city",
    ]
    selected = select_top_k(candidates, k=2)
    assert "count the french institutions by city" not in selected
    assert len(selected) == 2


def test_select_top_k_small_pool_returns_all():
    assert select_top_k(["one", "two"], k=5) == ["one", "two"]


def test_select_top_k_invalid_k():
    with pytest.raises(ValueError):
        select_top_k(["a"], k=0)
