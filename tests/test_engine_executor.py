"""Unit tests for the relational engine (executor semantics)."""

import pytest

from repro.engine import create_database
from repro.errors import ExecutionError, SchemaError
from repro.schema.model import Column, ColumnType, Schema

I = ColumnType.INTEGER
F = ColumnType.REAL
T = ColumnType.TEXT


def run(db, sql):
    return db.execute(sql).rows


def test_projection_and_filter(mini_db):
    rows = run(mini_db, "SELECT specobjid FROM specobj WHERE subclass = 'STARBURST'")
    assert rows == [(10,)]


def test_text_equality_case_insensitive(mini_db):
    rows = run(mini_db, "SELECT specobjid FROM specobj WHERE class = 'galaxy'")
    assert len(rows) == 3


def test_null_never_equal(mini_db):
    rows = run(mini_db, "SELECT specobjid FROM specobj WHERE subclass = 'STARBURST' OR subclass IS NULL")
    assert {r[0] for r in rows} == {10, 14}


def test_arithmetic_in_where(mini_db):
    rows = run(
        mini_db,
        "SELECT objid FROM photoobj WHERE u - r > 1 AND u - r < 2.6",
    )
    assert {r[0] for r in rows} == {1}


def test_hash_join_on_fk(mini_db):
    rows = run(
        mini_db,
        "SELECT T1.objid, T2.class FROM photoobj AS T1 "
        "JOIN specobj AS T2 ON T2.bestobjid = T1.objid WHERE T2.class = 'QSO'",
    )
    assert rows == [(4, "QSO")]


def test_three_table_join(mini_db):
    rows = run(
        mini_db,
        "SELECT T1.neighbormode, T3.class FROM neighbors AS T1 "
        "JOIN photoobj AS T2 ON T1.objid = T2.objid "
        "JOIN specobj AS T3 ON T3.bestobjid = T2.objid "
        "WHERE T1.distance < 0.1",
    )
    assert sorted(rows) == [(2, "GALAXY"), (2, "STAR")]


def test_group_by_count(mini_db):
    rows = run(mini_db, "SELECT COUNT(*), class FROM specobj GROUP BY class")
    assert sorted(rows) == [(1, "QSO"), (1, "STAR"), (3, "GALAXY")]


def test_having_filters_groups(mini_db):
    rows = run(
        mini_db,
        "SELECT class FROM specobj GROUP BY class HAVING COUNT(*) > 1",
    )
    assert rows == [("GALAXY",)]


def test_aggregate_over_empty_set_is_null(mini_db):
    rows = run(mini_db, "SELECT AVG(z) FROM specobj WHERE class = 'NOPE'")
    assert rows == [(None,)]


def test_count_over_empty_set_is_zero(mini_db):
    rows = run(mini_db, "SELECT COUNT(*) FROM specobj WHERE class = 'NOPE'")
    assert rows == [(0,)]


def test_count_column_skips_nulls(mini_db):
    rows = run(mini_db, "SELECT COUNT(subclass) FROM specobj")
    assert rows == [(4,)]


def test_count_distinct(mini_db):
    rows = run(mini_db, "SELECT COUNT(DISTINCT class) FROM specobj")
    assert rows == [(3,)]


def test_order_by_desc_limit(mini_db):
    rows = run(mini_db, "SELECT specobjid FROM specobj ORDER BY z DESC LIMIT 2")
    assert rows == [(13,), (10,)]


def test_order_by_with_nulls_first_ascending(mini_schema):
    db = create_database(mini_schema)
    db.insert("photoobj", [(1, None, 1.0, 3), (2, 5.0, 1.0, 3)])
    rows = run(db, "SELECT objid FROM photoobj ORDER BY u ASC")
    assert rows == [(1,), (2,)]


def test_scalar_subquery_comparison(mini_db):
    rows = run(
        mini_db, "SELECT specobjid FROM specobj WHERE z > (SELECT AVG(z) FROM specobj)"
    )
    assert {r[0] for r in rows} == {10, 13}


def test_scalar_subquery_multiple_rows_fails(mini_db):
    assert mini_db.try_execute(
        "SELECT specobjid FROM specobj WHERE z > (SELECT z FROM specobj)"
    ) is None


def test_in_subquery(mini_db):
    rows = run(
        mini_db,
        "SELECT objid FROM photoobj WHERE objid IN "
        "(SELECT bestobjid FROM specobj WHERE class = 'STAR')",
    )
    assert rows == [(3,)]


def test_not_in_subquery(mini_db):
    rows = run(
        mini_db,
        "SELECT objid FROM photoobj WHERE objid NOT IN "
        "(SELECT bestobjid FROM specobj WHERE class = 'GALAXY')",
    )
    assert {r[0] for r in rows} == {3, 4}


def test_union_dedupes(mini_db):
    rows = run(
        mini_db,
        "SELECT class FROM specobj UNION SELECT class FROM specobj",
    )
    assert len(rows) == 3


def test_union_all_keeps_duplicates(mini_db):
    rows = run(
        mini_db,
        "SELECT class FROM specobj UNION ALL SELECT class FROM specobj",
    )
    assert len(rows) == 10


def test_except(mini_db):
    rows = run(
        mini_db,
        "SELECT objid FROM photoobj EXCEPT SELECT bestobjid FROM specobj WHERE class = 'GALAXY'",
    )
    assert {r[0] for r in rows} == {3, 4}


def test_intersect(mini_db):
    rows = run(
        mini_db,
        "SELECT objid FROM photoobj WHERE type = 3 INTERSECT "
        "SELECT bestobjid FROM specobj",
    )
    # photoobj type 3 rows: objids 1 and 3 (objid 5 has type 0).
    assert {r[0] for r in rows} == {1, 3}


def test_between(mini_db):
    rows = run(mini_db, "SELECT specobjid FROM specobj WHERE z BETWEEN 0.3 AND 0.7")
    assert {r[0] for r in rows} == {10, 11, 14}


def test_like_pattern(mini_db):
    rows = run(mini_db, "SELECT specobjid FROM specobj WHERE subclass LIKE '%BURST%'")
    assert rows == [(10,)]


def test_distinct_projection(mini_db):
    rows = run(mini_db, "SELECT DISTINCT class FROM specobj")
    assert len(rows) == 3


def test_star_projection(mini_db):
    result = mini_db.execute("SELECT * FROM photoobj WHERE objid = 1")
    assert result.columns == ["objid", "u", "r", "type"]
    assert result.rows == [(1, 19.0, 16.5, 3)]


def test_derived_table(mini_db):
    rows = run(
        mini_db,
        "SELECT AVG(zz) FROM (SELECT z AS zz FROM specobj WHERE class = 'GALAXY') AS d",
    )
    assert rows[0][0] == pytest.approx((0.70 + 0.30 + 0.55) / 3)


def test_division_by_zero_yields_null(mini_schema):
    db = create_database(mini_schema)
    db.insert("photoobj", [(1, 5.0, 0.0, 3)])
    rows = run(db, "SELECT u / r FROM photoobj")
    assert rows == [(None,)]


def test_unknown_table_raises(mini_db):
    with pytest.raises(ExecutionError):
        mini_db.execute("SELECT a FROM nonexistent")


def test_unknown_column_raises(mini_db):
    with pytest.raises(ExecutionError):
        mini_db.execute("SELECT nonexistent FROM specobj")


def test_try_execute_swallows_errors(mini_db):
    assert mini_db.try_execute("SELECT nonexistent FROM specobj") is None
    assert mini_db.try_execute("SELECT FROM WHERE") is None


def test_insert_type_validation(mini_schema):
    db = create_database(mini_schema)
    with pytest.raises(ExecutionError):
        db.insert("photoobj", [("not-an-int", 1.0, 1.0, 3)])
    with pytest.raises(ExecutionError):
        db.insert("photoobj", [(1, 1.0, 1.0)])  # wrong arity


def test_create_database_rejects_unknown_table(mini_schema):
    with pytest.raises(SchemaError):
        create_database(mini_schema, {"nope": []})


def test_result_multiset_canonicalisation(mini_db):
    a = mini_db.execute("SELECT z FROM specobj WHERE specobjid = 12")
    b = mini_db.execute("SELECT 0 FROM specobj WHERE specobjid = 12")
    # 0.0 (REAL) and 0 (INTEGER) canonicalise identically.
    assert a.to_multiset() == b.to_multiset()


def test_aggregate_outside_group_context_raises(mini_db):
    with pytest.raises(ExecutionError):
        mini_db.execute("SELECT specobjid FROM specobj WHERE COUNT(*) > 1")
