"""Unit tests for the Table storage layer."""

import pytest

from repro.engine.table import Table
from repro.errors import ExecutionError
from repro.schema.model import Column, ColumnType, TableDef

I = ColumnType.INTEGER
F = ColumnType.REAL
T = ColumnType.TEXT
B = ColumnType.BOOLEAN
D = ColumnType.DATE


@pytest.fixture()
def table():
    definition = TableDef(
        "t",
        (
            Column("id", I, nullable=False),
            Column("score", F),
            Column("label", T),
            Column("flag", B),
            Column("day", D),
        ),
        primary_key="id",
    )
    return Table(definition)


def test_insert_and_len(table):
    table.insert((1, 2.5, "x", True, "2020-01-01"))
    table.insert([2, None, None, False, None])
    assert len(table) == 2


def test_int_coerced_to_float_in_real_column(table):
    table.insert((1, 3, "x", True, "2020-01-01"))
    assert table.rows[0][1] == 3.0
    assert isinstance(table.rows[0][1], float)


def test_bool_rejected_in_int_column(table):
    with pytest.raises(ExecutionError):
        table.insert((True, 1.0, "x", True, "2020-01-01"))


def test_wrong_type_rejected(table):
    with pytest.raises(ExecutionError):
        table.insert((1, "not-a-number", "x", True, "2020-01-01"))
    with pytest.raises(ExecutionError):
        table.insert((1, 1.0, 42, True, "2020-01-01"))


def test_wrong_arity_rejected(table):
    with pytest.raises(ExecutionError):
        table.insert((1, 1.0))


def test_column_index_case_insensitive(table):
    assert table.column_index("LABEL") == 2
    with pytest.raises(ExecutionError):
        table.column_index("nope")


def test_column_values_and_distinct(table):
    table.insert_many(
        [
            (1, 1.0, "a", True, None),
            (2, 1.0, "a", True, None),
            (3, 2.0, "b", False, None),
            (4, None, None, None, None),
        ]
    )
    assert table.column_values("label") == ["a", "a", "b", None]
    assert table.distinct_values("label") == ["a", "b"]  # NULLs excluded


def test_estimated_bytes_scales(table):
    assert table.estimated_bytes() == 0
    table.insert_many([(i, 1.0, "hello", True, "2020-01-01") for i in range(100)])
    small = table.estimated_bytes()
    table.insert_many([(100 + i, 1.0, "hello", True, "2020-01-01") for i in range(100)])
    assert table.estimated_bytes() > small


def test_iteration_yields_tuples(table):
    table.insert((1, 1.0, "a", True, None))
    rows = list(table)
    assert rows == [(1, 1.0, "a", True, None)]
