"""Executor edge cases: join planning, scope resolution, guards."""

import pytest

from repro.engine import create_database
from repro.engine.executor import MAX_INTERMEDIATE_ROWS
from repro.errors import ExecutionError
from repro.schema.model import Column, ColumnType, Schema, TableDef

I = ColumnType.INTEGER
T = ColumnType.TEXT


def test_duplicate_binding_rejected(mini_db):
    with pytest.raises(ExecutionError):
        mini_db.execute("SELECT a.objid FROM photoobj AS a JOIN specobj AS a ON a.objid = a.bestobjid")


def test_join_without_condition_is_cross(mini_db):
    result = mini_db.execute("SELECT COUNT(*) FROM photoobj JOIN neighbors")
    assert result.rows == [(5 * 4,)]


def test_comma_from_is_cartesian(mini_db):
    result = mini_db.execute("SELECT COUNT(*) FROM photoobj, specobj")
    assert result.rows == [(25,)]


def test_join_residual_condition(mini_db):
    # Equality for hashing plus a residual inequality on the joined pair.
    result = mini_db.execute(
        "SELECT T2.specobjid FROM photoobj AS T1 "
        "JOIN specobj AS T2 ON T2.bestobjid = T1.objid AND T2.z > 0.5"
    )
    assert {r[0] for r in result.rows} == {10, 13, 14}


def test_join_on_nonequality_only(mini_db):
    result = mini_db.execute(
        "SELECT COUNT(*) FROM photoobj AS T1 JOIN specobj AS T2 ON T2.z > T1.u"
    )
    assert result.rows == [(0,)]  # magnitudes dwarf redshifts in the fixture


def test_null_join_keys_do_not_match(mini_schema):
    db = create_database(mini_schema)
    db.insert("photoobj", [(1, 1.0, 1.0, 3)])
    db.insert("specobj", [(10, None, "GALAXY", None, 0.5, 1.0)])
    result = db.execute(
        "SELECT COUNT(*) FROM specobj AS s JOIN photoobj AS p ON s.bestobjid = p.objid"
    )
    assert result.rows == [(0,)]


def test_unqualified_column_resolves_first_binding(mini_db):
    # `objid` exists in photoobj and neighbors; SQLite resolution order picks
    # the first FROM binding.
    result = mini_db.execute(
        "SELECT objid FROM photoobj AS p JOIN neighbors AS n ON n.objid = p.objid "
        "WHERE p.objid = 1"
    )
    assert result.rows == [(1,)]


def test_select_without_from(mini_db):
    result = mini_db.execute("SELECT 1 + 2")
    assert result.rows == [(3,)]


def test_cartesian_guard():
    schema = Schema(
        name="big",
        tables=(TableDef("t", (Column("a", I),)),),
    )
    db = create_database(schema, {"t": [(i,) for i in range(2000)]})
    assert 2000 * 2000 > MAX_INTERMEDIATE_ROWS
    with pytest.raises(ExecutionError):
        db.execute("SELECT COUNT(*) FROM t AS x, t AS y")


def test_group_by_on_expression(mini_db):
    result = mini_db.execute(
        "SELECT COUNT(*) FROM specobj GROUP BY class ORDER BY COUNT(*) DESC"
    )
    assert result.rows == [(3,), (1,), (1,)]


def test_order_by_aggregate_in_group_context(mini_db):
    result = mini_db.execute(
        "SELECT class FROM specobj GROUP BY class ORDER BY AVG(z) DESC LIMIT 1"
    )
    assert result.rows == [("QSO",)]


def test_having_on_avg(mini_db):
    result = mini_db.execute(
        "SELECT class FROM specobj GROUP BY class HAVING AVG(z) > 0.4"
    )
    assert {r[0] for r in result.rows} == {"GALAXY", "QSO"}


def test_projection_alias_used_as_label(mini_db):
    result = mini_db.execute("SELECT z AS redshift FROM specobj WHERE specobjid = 10")
    assert result.columns == ["redshift"]
