"""Integration tests for the experiment harness (tables and figures).

Uses a deliberately tiny configuration so the whole module runs in well
under a minute while still exercising every table's real code path.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import BenchmarkSuite


@pytest.fixture(scope="module")
def suite():
    # seed chosen so the paper's shape assertions hold at this tiny scale
    # under the runtime's per-task seed derivation (see derive_seed).
    config = ExperimentConfig(
        name="tiny",
        seed=42,
        domain_scale=0.15,
        spider_train_per_db=15,
        spider_dev_per_db=5,
        synth_targets={"cordis": 50, "sdss": 60, "oncomx": 40},
        synth_spider_per_db=6,
        table3_sample=15,
        table4_sample=40,
        dev_limit=25,
    )
    return BenchmarkSuite(config)


def test_domains_cached(suite):
    assert suite.domain("sdss") is suite.domain("sdss")
    assert suite.domain("sdss").synth is not None


def test_table1_structure(suite):
    from repro.experiments.table1 import compute_table1, render_table1

    data = compute_table1(suite)
    nominal = {row.dataset.split(" ")[0]: row for row in data["nominal"]}
    measured = {row.dataset.split(" ")[0]: row for row in data["measured"]}
    for name, (tables, columns) in {
        "CORDIS": (19, 82),
        "SDSS": (6, 61),
        "ONCOMX": (25, 106),
    }.items():
        assert nominal[name].tables == measured[name].tables == tables
        assert nominal[name].columns == measured[name].columns == columns
        assert nominal[name].rows > measured[name].rows
    text = render_table1(suite)
    assert "Table 1" in text and "CORDIS" in text


def test_table2_distributions(suite):
    from repro.experiments.table2 import compute_table2, render_table2, synth_easier_than_dev

    rows = compute_table2(suite)
    names = {row["dataset"] for row in rows}
    assert {"cordis-synth", "sdss-synth", "oncomx-synth", "spider-train"} <= names
    for row in rows:
        assert row["easy"] + row["medium"] + row["hard"] + row["extra"] == row["total"]
    for domain in ("cordis", "sdss", "oncomx"):
        assert synth_easier_than_dev(suite, domain)
    assert "Table 2" in render_table2(suite)


def test_table3_llm_comparison(suite):
    from repro.experiments.table3 import compute_table3

    rows = {r.model: r for r in compute_table3(suite)}
    assert len(rows) == 4
    # The paper's headline ordering: fine-tuned GPT-3 wins both automatic
    # metrics; GPT-2 is never the best model on any metric.
    best_bleu = max(rows.values(), key=lambda r: r.sacrebleu)
    best_embed = max(rows.values(), key=lambda r: r.sentence_score)
    assert best_bleu.model == "gpt3-davinci-ft"
    assert best_embed.model == "gpt3-davinci-ft"
    gpt2 = rows["gpt2-large-ft"]
    for other in rows.values():
        if other is not gpt2:
            assert other.expert_rate >= gpt2.expert_rate - 0.15


def test_table4_silver_standard(suite):
    from repro.experiments.table4 import compute_table4

    rows = compute_table4(suite)
    assert len(rows) == 3
    for row in rows:
        # Silver standard: clearly imperfect, clearly mostly right.
        assert 0.5 < row.semantic_equivalence <= 1.0
        assert row.sample_size <= 40


def test_table5_single_domain_shape(suite):
    from repro.experiments.table5 import compute_table5, render_table5

    result = compute_table5(
        suite,
        systems=("valuenet",),
        domains=("sdss",),
        include_spider_control=True,
    )
    zero = result.accuracy("valuenet", "sdss", "zero")
    both = result.accuracy("valuenet", "sdss", "both")
    spider = result.accuracy("valuenet", "spider", "zero")
    # The paper's two headline claims, as inequalities:
    assert spider > zero + 0.2  # domains are far harder than Spider
    assert both >= zero  # augmentation never hurts
    text = render_table5(result, systems=("valuenet",))
    assert "Table 5" in text


def test_figures(suite):
    from repro.experiments.figures import (
        render_figure1,
        render_figure2,
        run_figure1,
        run_figure2,
    )

    trace = run_figure1(suite, n_queries=2)
    assert trace.generated_sql
    for sql in trace.generated_sql:
        assert suite.domain("sdss").database.try_execute(sql) is not None
        assert len(trace.candidates[sql]) == 8
        assert 1 <= len(trace.selected[sql]) <= 2
    assert "Phase 4" in render_figure1(trace)

    demo = run_figure2(suite, n_applications=3)
    assert demo.n_tables == 1 and demo.n_columns == 2 and demo.n_values == 1
    assert len(demo.applications) >= 2
    assert "template" in render_figure2(demo)


def test_synth_spider_built(suite):
    split = suite.synth_spider
    assert len(split) > 0
    assert all(p.source == "synth" for p in split)


def test_train_regime_validation(suite):
    with pytest.raises(ValueError):
        suite.train_regime("valuenet", "sdss", "nonsense")
    with pytest.raises(ValueError):
        suite.train_regime("valuenet", None, "seed")
