"""SQL three-valued-logic and coercion corner cases of the expression layer."""

import pytest

from repro.engine import create_database
from repro.schema.model import Column, ColumnType, Schema, TableDef

I = ColumnType.INTEGER
F = ColumnType.REAL
T = ColumnType.TEXT
B = ColumnType.BOOLEAN


@pytest.fixture(scope="module")
def db():
    schema = Schema(
        name="logic",
        tables=(
            TableDef(
                "t",
                (
                    Column("id", I, nullable=False),
                    Column("n", I),
                    Column("x", F),
                    Column("s", T),
                    Column("b", B),
                ),
                primary_key="id",
            ),
        ),
    )
    return create_database(
        schema,
        {
            "t": [
                (1, 10, 1.5, "alpha", True),
                (2, None, 2.5, "Beta", False),
                (3, 30, None, None, None),
                (4, 40, 4.5, "gamma delta", True),
            ]
        },
    )


def rows(db, sql):
    return db.execute(sql).rows


def test_null_comparison_filters_row(db):
    assert rows(db, "SELECT id FROM t WHERE n > 5") == [(1,), (3,), (4,)]


def test_null_in_or_unknown_still_matches_other_side(db):
    assert rows(db, "SELECT id FROM t WHERE n > 100 OR x < 3") == [(1,), (2,)]


def test_null_and_short_circuit_false(db):
    assert rows(db, "SELECT id FROM t WHERE n > 5 AND s = 'nope'") == []


def test_not_unknown_is_unknown(db):
    assert rows(db, "SELECT id FROM t WHERE NOT n > 5") == []
    # id=2 has NULL n: NOT UNKNOWN is UNKNOWN, so it stays filtered.


def test_is_null_and_is_not_null(db):
    assert rows(db, "SELECT id FROM t WHERE n IS NULL") == [(2,)]
    assert rows(db, "SELECT id FROM t WHERE s IS NOT NULL") == [(1,), (2,), (4,)]


def test_in_list_with_null_member(db):
    assert rows(db, "SELECT id FROM t WHERE n IN (10, 40)") == [(1,), (4,)]
    # NULL n is UNKNOWN, never matched.


def test_not_in_list_excludes_null_rows(db):
    assert rows(db, "SELECT id FROM t WHERE n NOT IN (10)") == [(3,), (4,)]


def test_between_inclusive_bounds(db):
    assert rows(db, "SELECT id FROM t WHERE n BETWEEN 10 AND 30") == [(1,), (3,)]


def test_not_between(db):
    assert rows(db, "SELECT id FROM t WHERE n NOT BETWEEN 10 AND 30") == [(4,)]


def test_like_case_insensitive(db):
    assert rows(db, "SELECT id FROM t WHERE s LIKE 'beta'") == [(2,)]


def test_like_underscore_wildcard(db):
    assert rows(db, "SELECT id FROM t WHERE s LIKE 'alph_'") == [(1,)]


def test_like_percent_spans_spaces(db):
    assert rows(db, "SELECT id FROM t WHERE s LIKE 'gamma%'") == [(4,)]


def test_boolean_equality(db):
    assert rows(db, "SELECT id FROM t WHERE b = TRUE") == [(1,), (4,)]
    assert rows(db, "SELECT id FROM t WHERE b = FALSE") == [(2,)]


def test_int_float_cross_type_compare(db):
    assert rows(db, "SELECT id FROM t WHERE n = 10") == [(1,)]
    assert rows(db, "SELECT id FROM t WHERE x > 2") == [(2,), (4,)]


def test_text_number_comparison_never_equal(db):
    assert rows(db, "SELECT id FROM t WHERE s = 10") == []


def test_arithmetic_with_null_operand_is_null(db):
    result = db.execute("SELECT n + 1 FROM t WHERE id = 2")
    assert result.rows == [(None,)]


def test_modulo(db):
    assert rows(db, "SELECT id FROM t WHERE n % 20 = 10") == [(1,), (3,)]


def test_abs_function(db):
    assert rows(db, "SELECT ABS(0 - n) FROM t WHERE id = 1") == [(10,)]


def test_unary_minus_in_comparison(db):
    assert rows(db, "SELECT id FROM t WHERE n > -5") == [(1,), (3,), (4,)]
