"""Tests for the sharded multi-replica serving fleet (repro.fleet).

The load-bearing guarantees:

* **Single-flight** — K concurrent identical questions decode exactly once
  across the whole fleet and all K get answers (property-based over K).
* **Zero-downtime reload** — requests racing a rolling reload all succeed;
  none are dropped, rejected or failed, and answers switch to the new
  model generation afterwards.
* **Deterministic sharding** — routing depends only on the ring members
  and the normalized question, never on process identity or timing.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import (
    DRAINING,
    SERVING,
    STOPPED,
    FleetConfig,
    FleetError,
    FleetRouter,
    FleetSpec,
    HashRing,
    QuotaPolicy,
    SharedCache,
    TenantQuotas,
    TokenBucket,
    build_fleet,
    make_replica,
    stable_hash,
)
from repro.resilience import FakeClock
from repro.serving import (
    DomainBackend,
    FleetProfile,
    LoadProfile,
    ServerConfig,
    evaluate_gates,
    run_serve_bench,
)
from repro.serving.cache import CachedResult


def run(coro):
    return asyncio.run(coro)


# -- stub systems ---------------------------------------------------------------


class EchoSystem:
    """Deterministic stand-in for a trained system."""

    _trained = True

    def link(self, question, db_id):
        return None

    def predict(self, question, db_id):
        return f"SELECT '{question}' FROM {db_id}"

    def predict_batch(self, questions, db_id):
        return [self.predict(question, db_id) for question in questions]


class CountingSystem(EchoSystem):
    """Counts decodes on a class attribute so replica deep-copies share it."""

    batches: list[list[str]] = []

    def predict_batch(self, questions, db_id):
        type(self).batches.append(list(questions))
        return super().predict_batch(questions, db_id)


class FaultySystem(EchoSystem):
    def predict(self, question, db_id):
        raise RuntimeError("decoder exploded")

    def predict_batch(self, questions, db_id):
        raise RuntimeError("batch decoder exploded")


def demo_backends(system=None):
    return {"demo": DomainBackend(name="demo", system=system or EchoSystem())}


def fast_config(**overrides):
    defaults = dict(max_batch=4, max_wait_ms=1.0)
    defaults.update(overrides)
    return ServerConfig(**defaults)


# -- hash ring ------------------------------------------------------------------


def test_stable_hash_is_process_independent():
    # blake2b, not the salted builtin hash: the value must never change
    # across processes or runs, or shard ownership scatters on restart.
    assert stable_hash("demo: q1") == stable_hash("demo: q1")
    assert stable_hash("a") != stable_hash("b")
    assert 0 <= stable_hash("anything") < 2**64


def test_ring_assignment_ignores_insertion_order():
    forward = HashRing(("r0", "r1", "r2"), vnodes=32)
    backward = HashRing(("r2", "r1", "r0"), vnodes=32)
    for i in range(200):
        assert forward.node_for(f"q{i}") == backward.node_for(f"q{i}")


def test_ring_spreads_keys_over_all_nodes():
    ring = HashRing(("r0", "r1", "r2"), vnodes=64)
    owners = {ring.node_for(f"q{i}") for i in range(300)}
    assert owners == {"r0", "r1", "r2"}


def test_ring_removal_moves_only_the_removed_nodes_keys():
    ring = HashRing(("r0", "r1", "r2"), vnodes=32)
    before = {f"q{i}": ring.node_for(f"q{i}") for i in range(300)}
    ring.remove("r1")
    for key, owner in before.items():
        if owner != "r1":
            assert ring.node_for(key) == owner
        else:
            assert ring.node_for(key) in ("r0", "r2")


def test_nodes_for_yields_distinct_failover_order():
    ring = HashRing(("r0", "r1", "r2"), vnodes=16)
    siblings = ring.nodes_for("some question", 3)
    assert len(siblings) == 3
    assert len(set(siblings)) == 3
    assert siblings[0] == ring.node_for("some question")
    # Stable: the same key always gets the same failover chain.
    assert siblings == ring.nodes_for("some question", 3)


def test_empty_ring_raises():
    with pytest.raises(KeyError):
        HashRing().node_for("q")
    assert HashRing().nodes_for("q", 2) == []


# -- quotas ---------------------------------------------------------------------


def test_token_bucket_burst_then_refill():
    clock = FakeClock()
    bucket = TokenBucket(QuotaPolicy(rate_per_s=2.0, burst=3), clock=clock)
    assert [bucket.try_acquire() for _ in range(4)] == [True, True, True, False]
    clock.advance(1.0)  # 2 tokens back
    assert bucket.try_acquire()
    assert bucket.try_acquire()
    assert not bucket.try_acquire()
    assert bucket.admitted == 5
    assert bucket.rejected == 2


def test_tenant_quotas_isolate_tenants():
    clock = FakeClock()
    quotas = TenantQuotas(default=QuotaPolicy(1.0, 1), clock=clock)
    assert quotas.admit("t0")
    assert not quotas.admit("t0")  # t0 exhausted its own bucket...
    assert quotas.admit("t1")      # ...t1 is untouched
    snapshot = quotas.snapshot()
    assert snapshot["t0"]["rejected"] == 1
    assert snapshot["t1"]["admitted"] == 1


def test_tenant_quotas_default_none_is_unlimited():
    quotas = TenantQuotas(default=None, overrides={"noisy": QuotaPolicy(1.0, 1)})
    assert all(quotas.admit("anyone") for _ in range(100))
    assert quotas.admit("noisy")
    assert not quotas.admit("noisy")


# -- shared cache / single-flight ------------------------------------------------


def test_shared_cache_single_flight_mechanics():
    async def scenario():
        cache = SharedCache(capacity=8)
        leader = cache.flight("demo", "What is X?")
        follower = cache.flight("demo", "what is x?")  # normalizes to same key
        assert leader.leader and not follower.leader
        assert cache.coalesced == 1
        with pytest.raises(ValueError):
            cache.settle(follower, "nope")
        cache.settle(leader, "answer")
        assert await follower.future == "answer"
        assert cache.inflight == 0

    run(scenario())


def test_shared_cache_aborted_leader_settles_followers_with_none():
    async def scenario():
        cache = SharedCache()
        leader = cache.flight("demo", "q")
        follower = cache.flight("demo", "q")
        cache.settle(leader, None)
        assert await follower.future is None
        assert cache.aborted == 1

    run(scenario())


def test_shared_cache_invalidate_reports_dropped_count():
    cache = SharedCache(capacity=8)
    cache.put("demo", "q1", CachedResult(sql="SELECT 1"))
    cache.put("demo", "q2", CachedResult(sql="SELECT 2"))
    assert cache.invalidate() == 2
    hit, _ = cache.get("demo", "q1")
    assert not hit


# -- router ---------------------------------------------------------------------


def test_fleet_routes_and_tags_results():
    async def scenario():
        router = build_fleet(demo_backends(), 2, server_config=fast_config())
        async with router:
            results = await asyncio.gather(
                *(router.submit(f"question {i}", "demo") for i in range(12))
            )
        assert all(r.ok for r in results)
        assert {r.replica for r in results if not r.single_flight} <= {"r0", "r1"}
        assert all(r.tenant == "default" for r in results)
        view = router.metrics_view()
        assert view["fleet.requests"]["value"] == 12
        assert "replica.r0.serving.served" in view
        assert "replica.r1.serving.served" in view
        return results

    run(scenario())


def test_fleet_routing_is_deterministic_across_fleets():
    async def shard_map():
        config = FleetConfig(cache_capacity=0)
        router = build_fleet(
            demo_backends(), 3, server_config=fast_config(), config=config
        )
        async with router:
            results = await asyncio.gather(
                *(router.submit(f"question {i}", "demo") for i in range(30))
            )
        return {r.question: r.replica for r in results}

    assert run(shard_map()) == run(shard_map())


def test_unknown_domain_is_a_structured_failure():
    async def scenario():
        router = build_fleet(demo_backends(), 2, server_config=fast_config())
        async with router:
            return await router.submit("q", "nope")

    result = run(scenario())
    assert result.status == "failed"
    assert result.error.kind == "unknown-domain"


def test_duplicate_slot_is_rejected():
    router = build_fleet(demo_backends(), 2, server_config=fast_config())
    with pytest.raises(FleetError):
        router.add_replica(
            make_replica("r0", demo_backends(), fast_config())
        )


@settings(max_examples=10, deadline=None)
@given(duplicates=st.integers(min_value=2, max_value=12))
def test_concurrent_identical_questions_decode_exactly_once(duplicates):
    """Satellite: K concurrent identical questions -> one decode, K answers."""
    CountingSystem.batches = []

    async def scenario():
        router = build_fleet(
            demo_backends(CountingSystem()), 2, server_config=fast_config()
        )
        async with router:
            return await asyncio.gather(
                *(
                    router.submit("the same question", "demo")
                    for _ in range(duplicates)
                )
            )

    results = run(scenario())
    assert len(results) == duplicates
    assert all(r.ok for r in results)
    assert len({r.sql for r in results}) == 1
    # Exactly one decode hit a replica; everyone else coalesced onto it.
    assert sum(len(batch) for batch in CountingSystem.batches) == 1
    assert sum(1 for r in results if r.single_flight) == duplicates - 1


def test_fleet_shared_cache_answers_repeat_questions():
    async def scenario():
        router = build_fleet(demo_backends(), 2, server_config=fast_config())
        async with router:
            first = await router.submit("what is x?", "demo")
            second = await router.submit("What is X?", "demo")
        return first, second

    first, second = run(scenario())
    assert first.ok and not first.cached
    assert second.cached and second.sql == first.sql


def _owned_question(router, slot, domain="demo"):
    """A question whose shard owner is ``slot`` (probe the ring)."""
    ring = router._rings[domain]
    for i in range(1000):
        question = f"probe question {i}"
        if ring.node_for(SharedCache.key(domain, question)[1]) == slot:
            return question
    raise AssertionError(f"no probe question owned by {slot}")


def test_failed_shard_owner_retries_on_its_sibling():
    async def scenario():
        router = FleetRouter(
            FleetConfig(retries=1, breaker_failures=1, cache_capacity=0)
        )
        router.add_replica(
            make_replica("r0", demo_backends(FaultySystem()), fast_config())
        )
        router.add_replica(make_replica("r1", demo_backends(), fast_config()))
        async with router:
            question = _owned_question(router, "r0")
            first = await router.submit(question, "demo")
            # r0's breaker opened on the failure: the next r0-owned request
            # skips it without spending a decode there.
            second = await router.submit(_owned_question(router, "r0"), "demo")
        return router, first, second

    router, first, second = run(scenario())
    assert first.ok and first.replica == "r1"
    assert second.ok and second.replica == "r1"
    assert router.counters["retries"] >= 1
    assert router.counters["fast_failed"] >= 1
    assert router.stats()["breakers"]["r0"]["state"] == "open"


def test_quota_rejection_is_structured_and_per_tenant():
    async def scenario():
        quotas = TenantQuotas(default=QuotaPolicy(1.0, 1), clock=FakeClock())
        router = build_fleet(
            demo_backends(), 2, server_config=fast_config(), quotas=quotas
        )
        async with router:
            first = await router.submit("q1", "demo", tenant="t0")
            second = await router.submit("q2", "demo", tenant="t0")
            other = await router.submit("q3", "demo", tenant="t1")
        return router, first, second, other

    router, first, second, other = run(scenario())
    assert first.ok
    assert second.status == "rejected"
    assert second.error.kind == "quota"
    assert second.tenant == "t0"
    assert other.ok  # one tenant's pressure never touches another's
    assert router.counters["quota_rejected"] == 1


# -- zero-downtime reload ---------------------------------------------------------


class V2System(EchoSystem):
    def predict(self, question, db_id):
        return f"SELECT v2 '{question}' FROM {db_id}"


def test_reload_swaps_generations_without_dropping_requests():
    """Satellite: requests racing a reload all succeed; zero dropped."""

    async def scenario():
        router = build_fleet(
            demo_backends(),
            2,
            server_config=fast_config(),
            factory=lambda: demo_backends(V2System()),
        )
        async with router:
            old = dict(router.replicas)

            async def client(i):
                await asyncio.sleep(0.001 * (i % 5))
                return await router.submit(f"load question {i}", "demo")

            load = [asyncio.ensure_future(client(i)) for i in range(40)]
            await asyncio.sleep(0.002)
            report = await router.reload()
            results = await asyncio.gather(*load)
            after = await router.submit("a fresh question", "demo")
        return router, old, report, results, after

    router, old, report, results, after = run(scenario())
    assert all(r.ok for r in results), [r.status for r in results if not r.ok]
    statuses = {r.status for r in results}
    assert "failed" not in statuses and "rejected" not in statuses
    assert {swap["slot"] for swap in report["swaps"]} == {"r0", "r1"}
    assert all(replica.state == STOPPED for replica in old.values())
    assert all(
        replica.generation == 2 for replica in router.replicas.values()
    )
    assert all(
        replica.state == SERVING for replica in router.replicas.values()
    )
    # The roll invalidated the shared cache, so the new generation answers.
    assert after.sql.startswith("SELECT v2 ")
    assert router.counters["reloads"] == 1
    assert router.counters["swapped"] == 2


def test_reload_without_factory_raises():
    async def scenario():
        router = FleetRouter()
        router.add_replica(make_replica("r0", demo_backends(), fast_config()))
        async with router:
            await router.reload()

    with pytest.raises(FleetError):
        run(scenario())


def test_drain_with_no_traffic_stops_cleanly():
    async def scenario():
        replica = make_replica("r0", demo_backends(), fast_config())
        await replica.server.start()
        assert replica.state == SERVING
        drained = await replica.drain()
        assert replica.state == STOPPED
        assert drained == 0
        assert DRAINING == "draining"  # the intermediate state is public API

    run(scenario())


# -- fleet specs ------------------------------------------------------------------


def test_fleet_spec_round_trips_and_reregisters_adapters():
    from repro.adapters import specs_for

    spec = FleetSpec(
        system="valuenet",
        regime="both",
        domains=("cordis",),
        adapter_specs=specs_for(("cordis",)),
    )
    spec.ensure_adapters()  # idempotent on identical manifests
    data = spec.as_dict()
    assert data["domains"] == ["cordis"]
    assert data["adapter_specs"][0]["name"] == "cordis"


# -- serve-bench report + gates ---------------------------------------------------


@pytest.fixture(scope="module")
def fleet_report():
    questions = {"demo": [f"question {i}" for i in range(8)]}
    profile = LoadProfile(concurrency=8, repeat=2, seed=11)
    fleet = FleetProfile(
        replicas=2,
        tenants=2,
        soak_qps=400.0,
        soak_requests=12,
        quota_rate=200.0,
        quota_burst=8.0,
    )
    return run_serve_bench(
        demo_backends(), questions, profile, fast_config(), fleet=fleet
    )


def test_report_has_fleet_and_soak_arms(fleet_report):
    assert fleet_report["schema_version"] == 2
    assert set(fleet_report["arms"]) == {"unbatched", "batched", "fleet", "soak"}
    for arm in fleet_report["arms"].values():
        assert arm["achieved_qps"] > 0
        assert arm["queue_depth"]["samples"]
        assert set(arm["rejections"]) == {"quota", "admission"}
        assert "answers" not in arm  # identity input, not report payload
    assert fleet_report["arms"]["fleet"]["replicas"] == 2
    assert fleet_report["arms"]["soak"]["offered_qps"] == 400.0


def test_report_fleet_identity_and_tenants(fleet_report):
    identity = fleet_report["fleet_identity"]
    assert identity["identical"], identity["divergences"]
    assert identity["compared"] == 8
    tenants = fleet_report["arms"]["soak"]["tenants"]
    assert set(tenants["per_tenant"]) == {"t0", "t1"}
    assert tenants["fairness"]["p95_spread"] >= 1.0
    assert "fleet_speedup" in fleet_report
    assert "queue_p95_ratio" in fleet_report


def test_gates_pass_on_the_real_report(fleet_report):
    assert evaluate_gates(fleet_report) == []


def _minimal_report(**arm_overrides):
    arm = {
        "statuses": {"ok": 10},
        "rejections": {"quota": 0, "admission": 0},
        "breakers": {},
        "latency": {"p95_ms": 10.0, "p99_ms": 20.0},
    }
    arm.update(arm_overrides)
    return {
        "speedup": 3.0,
        "arms": {"unbatched": dict(arm), "batched": arm},
    }


def test_gates_always_fail_on_failures_and_timeouts():
    report = _minimal_report(statuses={"ok": 8, "failed": 1, "timeout": 1})
    failures = evaluate_gates(report, allow_rejections=True)
    assert len(failures) == 4  # both arms x both statuses
    assert any("failed" in f for f in failures)
    assert any("timeout" in f for f in failures)


def test_gates_admission_rejections_respect_allow_flag():
    """Satellite: non-zero exit on rejections unless --allow-rejections."""
    report = _minimal_report(rejections={"quota": 0, "admission": 3})
    assert evaluate_gates(report)  # gated by default
    assert evaluate_gates(report, allow_rejections=True) == []


def test_gates_quota_rejections_never_gate():
    report = _minimal_report(rejections={"quota": 7, "admission": 0})
    assert evaluate_gates(report) == []


def test_gates_open_breaker_fails():
    report = _minimal_report(breakers={"demo": {"state": "open"}})
    assert any("breaker" in f for f in evaluate_gates(report))


def test_gates_fleet_gain_needs_speedup_or_queue_relief():
    report = _minimal_report()
    report["fleet_identity"] = {"identical": True, "divergences": []}
    report["fleet_speedup"] = 1.1
    report["queue_p95_ratio"] = 0.4
    assert evaluate_gates(report, assert_fleet_gain=True) == []
    report["queue_p95_ratio"] = 0.9
    assert any("fleet gain" in f for f in evaluate_gates(report, assert_fleet_gain=True))
    report["fleet_speedup"] = 2.5
    assert evaluate_gates(report, assert_fleet_gain=True) == []


def test_gates_fleet_gain_downgrades_to_warning_on_one_cpu_host():
    """Satellite: on a 1-cpu host the missed fleet gain is a recorded
    warning in the report, not a failure; multi-cpu hosts still gate hard."""
    report = _minimal_report()
    report["fleet_identity"] = {"identical": True, "divergences": []}
    report["fleet_speedup"] = 1.1
    report["queue_p95_ratio"] = 0.9
    report["host"] = {"cpus": 1}
    assert evaluate_gates(report, assert_fleet_gain=True) == []
    assert any("1-cpu host" in w for w in report["warnings"])

    report["host"] = {"cpus": 8}
    assert any(
        "fleet gain" in f for f in evaluate_gates(report, assert_fleet_gain=True)
    )


def test_gates_identity_divergence_always_fails():
    report = _minimal_report()
    report["fleet_identity"] = {
        "identical": False,
        "divergences": [{"question": "demo: q", "batched_sql": "a", "fleet_sql": "b"}],
    }
    assert any("diverge" in f for f in evaluate_gates(report))


def test_gates_fairness_needs_a_multi_tenant_arm():
    report = _minimal_report()
    assert any(
        "fairness" in f for f in evaluate_gates(report, assert_fairness=2.0)
    )
    report["arms"]["soak"] = {
        "statuses": {"ok": 5},
        "rejections": {"quota": 0, "admission": 0},
        "breakers": {},
        "latency": {"p95_ms": 5.0, "p99_ms": 6.0},
        "tenants": {"fairness": {"p95_spread": 3.0, "answered_spread": 1.0}},
    }
    assert any(
        "spread" in f for f in evaluate_gates(report, assert_fairness=2.0)
    )
    assert evaluate_gates(report, assert_fairness=4.0) == []
