"""The static pre-filter must save executions without changing the output."""

import random

from repro.datasets import cordis
from repro.engine.database import create_database
from repro.schema.introspect import profile_database
from repro.schema.model import Column, ColumnType, Schema, TableDef
from repro.synthesis import AugmentationPipeline, PipelineConfig
from repro.synthesis.generation import GenerationConfig, SqlGenerator
from repro.synthesis.seeding import extract_templates
from repro.datasets.records import NLSQLPair


def run_pipeline(prefilter: bool):
    domain = cordis.build(scale=0.2)
    config = PipelineConfig(
        target_queries=50,
        seed=7,
        generation=GenerationConfig(static_prefilter=prefilter),
    )
    return AugmentationPipeline(domain, config=config).run()


def test_prefilter_preserves_generated_queries():
    with_filter = run_pipeline(True)
    without_filter = run_pipeline(False)
    assert [p.sql for p in with_filter.split.pairs] == [
        p.sql for p in without_filter.split.pairs
    ]
    # Same candidate stream, differently partitioned between the analyzer
    # and the execution oracle.
    on, off = with_filter.generation, without_filter.generation
    assert on.candidates == off.candidates
    assert on.accepted == off.accepted
    assert off.static_rejected == 0
    assert on.static_rejected + on.runtime_rejected == off.runtime_rejected
    assert on.executed == off.executed - on.static_rejected


def test_prefilter_saves_executions_on_narrow_range():
    # A one-row integer column: any sampled range predicate ``x > v`` draws
    # v == max(x), which the analyzer proves empty — every such candidate
    # must be rejected without executing.
    schema = Schema(
        name="narrow",
        tables=(
            TableDef(
                "t",
                (Column("x", ColumnType.INTEGER), Column("label", ColumnType.TEXT)),
            ),
        ),
        foreign_keys=(),
    )
    database = create_database(schema, {"t": [(5, "only")]})
    enhanced = profile_database(database)
    seeds = [NLSQLPair(question="q", sql="SELECT label FROM t WHERE x > 3", db_id="narrow")]
    templates = extract_templates(seeds, schema).templates
    generator = SqlGenerator(
        database,
        enhanced,
        random.Random(3),
        config=GenerationConfig(queries_per_template=5, max_attempts=5),
    )
    generator.generate(templates)
    assert generator.stats.static_rejected > 0
    assert generator.stats.executed < generator.stats.candidates


def test_pipeline_report_exposes_generation_stats():
    report = run_pipeline(True)
    stats = report.generation
    assert stats is not None
    assert stats.candidates == (
        stats.static_rejected + stats.executed
    )
    assert stats.executed == stats.runtime_rejected + stats.accepted
