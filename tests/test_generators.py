"""Unit tests for the synthetic-data primitives."""

import random

import pytest

from repro.datasets import generators as gen


@pytest.fixture()
def rng():
    return random.Random(123)


def test_word_is_pronounceable(rng):
    for _ in range(20):
        word = gen.word(rng)
        assert word.isalpha() and word.islower()
        assert 2 <= len(word) <= 12


def test_title_is_title_cased(rng):
    title = gen.title(rng, words=3)
    parts = title.split(" ")
    assert len(parts) == 3
    assert all(p[0].isupper() for p in parts)


def test_person_name_two_parts(rng):
    name = gen.person_name(rng)
    assert len(name.split(" ")) == 2


def test_sentence_ends_with_period(rng):
    sentence = gen.sentence(rng, words=6)
    assert sentence.endswith(".")
    assert sentence[0].isupper()


def test_iso_date_format(rng):
    for _ in range(20):
        date = gen.iso_date(rng, 2000, 2020)
        year, month, day = date.split("-")
        assert 2000 <= int(year) <= 2020
        assert 1 <= int(month) <= 12
        assert 1 <= int(day) <= 28


def test_skewed_choice_prefers_head(rng):
    values = ["a", "b", "c", "d"]
    draws = [gen.skewed_choice(rng, values) for _ in range(500)]
    assert draws.count("a") > draws.count("d")


def test_lognormal_int_positive_and_centered(rng):
    draws = [gen.lognormal_int(rng, median=1000) for _ in range(300)]
    assert all(d >= 0 for d in draws)
    middle = sorted(draws)[len(draws) // 2]
    assert 300 < middle < 3500


def test_lognormal_int_rejects_nonpositive_median(rng):
    with pytest.raises(ValueError):
        gen.lognormal_int(rng, median=0)


def test_bounded_float_in_range(rng):
    for _ in range(50):
        value = gen.bounded_float(rng, 1.5, 2.5)
        assert 1.5 <= value <= 2.5


def test_unique_ints_distinct(rng):
    values = gen.unique_ints(rng, 10, 0, 20)
    assert len(set(values)) == 10
    with pytest.raises(ValueError):
        gen.unique_ints(rng, 30, 0, 20)


def test_acronym_uppercase(rng):
    acronym = gen.acronym(rng, 5)
    assert len(acronym) == 5 and acronym.isupper()


def test_determinism_given_seed():
    a = [gen.word(random.Random(9)) for _ in range(5)]
    b = [gen.word(random.Random(9)) for _ in range(5)]
    assert a == b
