"""Unit tests for the Spider hardness classifier.

The three paper examples (Q1/Q2/Q3 of Section 2) carry their published
hardness labels, which this classifier must reproduce exactly.
"""

import pytest

from repro.spider.hardness import classify_hardness, hardness_distribution


PAPER_EXAMPLES = [
    # Q1 — Spider hardness: easy
    ("SELECT s.specobjid FROM specobj AS s WHERE s.subclass = 'STARBURST'", "easy"),
    # Q2 — medium
    (
        "SELECT s.bestobjid, s.ra, s.dec, s.z FROM specobj AS s "
        "WHERE s.class = 'GALAXY' AND s.z > 0.5 AND s.z < 1",
        "medium",
    ),
    # Q3 — extra hard
    (
        "SELECT p.objid, s.specobjid FROM photoobj AS p "
        "JOIN specobj AS s ON s.bestobjid = p.objid "
        "WHERE s.class = 'GALAXY' AND p.u - p.r < 2.22 AND p.u - p.r > 1",
        "extra",
    ),
]


@pytest.mark.parametrize("sql,expected", PAPER_EXAMPLES)
def test_paper_running_examples(sql, expected):
    assert classify_hardness(sql) == expected


@pytest.mark.parametrize(
    "sql,expected",
    [
        ("SELECT a FROM t", "easy"),
        ("SELECT a FROM t WHERE b = 1", "easy"),
        ("SELECT COUNT(*) FROM t", "easy"),
        ("SELECT a, b FROM t WHERE c = 1", "medium"),
        ("SELECT a FROM t WHERE b = 1 AND c = 2", "medium"),
        ("SELECT COUNT(*), b FROM t GROUP BY b", "medium"),
        ("SELECT a FROM t ORDER BY b DESC LIMIT 1", "medium"),
        ("SELECT a FROM t WHERE b > (SELECT AVG(b) FROM t)", "hard"),
        ("SELECT a FROM t WHERE b = 1 UNION SELECT a FROM u WHERE c = 2", "hard"),
        (
            "SELECT a FROM t GROUP BY a HAVING COUNT(*) > 2 ORDER BY COUNT(*) DESC LIMIT 3",
            "hard",
        ),
        (
            "SELECT a, b FROM t WHERE c = 1 AND d = 2 "
            "GROUP BY a HAVING COUNT(*) > 2 ORDER BY COUNT(*) DESC LIMIT 3",
            "extra",
        ),
        (
            "SELECT a FROM t WHERE b > (SELECT AVG(b) FROM t) AND c = 1",
            "extra",
        ),
    ],
)
def test_component_thresholds(sql, expected):
    assert classify_hardness(sql) == expected


def test_or_connector_counts_toward_component1():
    easy = classify_hardness("SELECT a FROM t WHERE b = 1")
    harder = classify_hardness("SELECT a FROM t WHERE b = 1 OR c = 2 OR d = 3")
    assert easy == "easy" and harder in ("hard", "extra")


def test_like_counts_toward_component1():
    assert classify_hardness("SELECT a FROM t WHERE b LIKE '%x%'") == "medium"


def test_join_counts_tables():
    # A bare join is still easy (comp1 = 1); adding WHERE tips it to medium.
    bare = "SELECT T1.a FROM t AS T1 JOIN u AS T2 ON T1.id = T2.tid"
    filtered = bare + " WHERE T2.b = 1"
    assert classify_hardness(bare) == "easy"
    assert classify_hardness(filtered) == "medium"


def test_distribution_counter():
    counts = hardness_distribution(
        ["SELECT a FROM t", "SELECT a FROM t WHERE b = 1 AND c = 2"]
    )
    assert counts["easy"] == 1 and counts["medium"] == 1
    assert counts["hard"] == 0 and counts["extra"] == 0


def test_accepts_parsed_ast():
    from repro.sql import parse

    assert classify_hardness(parse("SELECT a FROM t")) == "easy"
