"""Unit tests for link-guided template instantiation (the decoder shared by
ValueNet and T5)."""

import pytest

from repro.errors import GenerationError
from repro.nl2sql.instantiate import GuidedInstantiator
from repro.nl2sql.linking import SchemaLinker
from repro.semql import extract_template, semql_to_sql, sql_to_semql
from repro.sql import parse


@pytest.fixture()
def instantiator(mini_db, mini_enhanced):
    return GuidedInstantiator(mini_db, mini_enhanced)


@pytest.fixture()
def linker(mini_db, mini_enhanced):
    return SchemaLinker(mini_db, mini_enhanced)


def template_of(sql, schema):
    return extract_template(sql_to_semql(parse(sql), schema), source_sql=sql)


def fill(instantiator, linker, template_sql, question, schema):
    template = template_of(template_sql, schema)
    links = linker.link(question)
    tree = instantiator.instantiate(template, links, question)
    return semql_to_sql(tree, schema)


def test_value_link_binds_column(instantiator, linker, mini_schema):
    sql = fill(
        instantiator,
        linker,
        "SELECT z FROM specobj WHERE class = 'GALAXY'",
        "Find the redshift of spectroscopic objects whose subclass is STARBURST.",
        mini_schema,
    )
    assert "subclass = 'STARBURST'" in sql
    assert "SELECT z" in sql


def test_number_fills_range_condition(instantiator, linker, mini_schema):
    sql = fill(
        instantiator,
        linker,
        "SELECT ra FROM specobj WHERE z > 0.9",
        "Show the right ascension of objects with redshift greater than 0.4.",
        mini_schema,
    )
    assert "z > 0.4" in sql
    assert sql.startswith("SELECT ra")


def test_comparator_intent_overrides_template_op(instantiator, linker, mini_schema):
    sql = fill(
        instantiator,
        linker,
        "SELECT ra FROM specobj WHERE z > 0.9",  # template says '>'
        "Show the right ascension of objects with redshift at most 0.4.",
        mini_schema,
    )
    assert "z <= 0.4" in sql


def test_mention_order_aligns_projection_and_filter(instantiator, linker, mini_schema):
    sql = fill(
        instantiator,
        linker,
        "SELECT ra FROM specobj WHERE z > 0.9",
        "Show the redshift of objects whose right ascension is above 121.",
        mini_schema,
    )
    assert sql.startswith("SELECT z")
    assert "ra > 121" in sql


def test_explicit_limit_adopted(instantiator, linker, mini_schema):
    sql = fill(
        instantiator,
        linker,
        "SELECT specobjid FROM specobj ORDER BY z DESC LIMIT 1",
        "Return the top 3 spectroscopic objects by redshift.",
        mini_schema,
    )
    assert sql.endswith("LIMIT 3")


def test_unfillable_value_raises(instantiator, linker, mini_schema):
    template = template_of(
        "SELECT z FROM specobj WHERE class = 'GALAXY'", mini_schema
    )
    links = linker.link("Show everything interesting.")  # no values, no numbers
    with pytest.raises(GenerationError):
        instantiator.instantiate(template, links, "Show everything interesting.")


def test_math_template_uses_math_group(instantiator, linker, mini_schema):
    sql = fill(
        instantiator,
        linker,
        "SELECT objid FROM photoobj WHERE u - r < 2.22",
        "Find the object id of photometric objects where magnitude u minus "
        "magnitude r is below 1.5.",
        mini_schema,
    )
    assert "u - r < 1.5" in sql or "r - u < 1.5" in sql


def test_between_values_ordered(instantiator, linker, mini_schema):
    sql = fill(
        instantiator,
        linker,
        "SELECT ra FROM specobj WHERE z BETWEEN 0.1 AND 0.4",
        "right ascension of objects with redshift between 0.9 and 0.2",
        mini_schema,
    )
    assert "BETWEEN 0.2 AND 0.9" in sql


def test_instantiation_deterministic(instantiator, linker, mini_schema):
    question = "Find the redshift of objects whose subclass is AGN."
    template = template_of("SELECT z FROM specobj WHERE class = 'GALAXY'", mini_schema)
    links = linker.link(question)
    a = semql_to_sql(instantiator.instantiate(template, links, question), mini_schema)
    links2 = linker.link(question)
    b = semql_to_sql(instantiator.instantiate(template, links2, question), mini_schema)
    assert a == b
