"""End-to-end integration tests across subsystem boundaries.

These are the "does the whole machine turn over" tests: domain build →
pipeline → training → prediction → scoring, exercised through the public
package API only (what a downstream user would import).
"""

import pytest

import repro


def test_public_api_surface():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_build_domain_validates_name():
    with pytest.raises(ValueError):
        repro.build_domain("unknown")


def test_build_domain_seed_override():
    a = repro.build_domain("sdss", scale=0.1, seed=1)
    b = repro.build_domain("sdss", scale=0.1, seed=2)
    table = a.database.schema.tables[0].name
    assert a.database.table(table).rows != b.database.table(table).rows


@pytest.fixture(scope="module")
def small_world(sdss_domain):
    from repro.spider import build_corpus
    from repro.synthesis import augment_domain

    corpus = build_corpus(train_per_db=25, dev_per_db=5)
    synth = sdss_domain.synth or augment_domain(sdss_domain, target_queries=100)
    return corpus, sdss_domain, synth


def test_full_loop_through_public_api(small_world):
    corpus, domain, synth = small_world

    system = repro.ValueNet()
    for db_id, database in corpus.databases.items():
        system.register_database(db_id, database, corpus.enhanced[db_id])
    system.register_database(domain.name, domain.database, domain.enhanced)
    system.train(
        list(corpus.train.pairs) + list(domain.seed.pairs) + list(synth.pairs)
    )

    accuracy = repro.ExecutionAccuracy()
    for pair in domain.dev.pairs[:40]:
        accuracy.add(
            domain.database, pair.sql, system.predict(pair.question, pair.db_id)
        )
    assert accuracy.total == 40
    assert accuracy.accuracy > 0.05


def test_synth_pairs_are_sound_training_material(small_world):
    """Synthetic pairs must parse, execute and carry synth provenance —
    the minimal contract for being fed into any NL-to-SQL system."""
    _, domain, synth = small_world
    for pair in synth.pairs:
        assert pair.source == "synth"
        assert pair.db_id == domain.name
        assert pair.question.strip()
        repro.parse(pair.sql)
        assert domain.database.try_execute(pair.sql) is not None
        assert pair.hardness in ("easy", "medium", "hard", "extra")


def test_paper_q1_q2_q3_end_to_end(sdss_domain):
    """The paper's three running-example queries execute on our SDSS
    instance and carry their published hardness labels."""
    database = sdss_domain.database
    q1 = "SELECT specobjid FROM specobj WHERE subclass = 'STARBURST'"
    q2 = (
        "SELECT bestobjid, ra, dec, z FROM specobj "
        "WHERE class = 'GALAXY' AND z > 0.5 AND z < 1"
    )
    q3 = (
        "SELECT T1.objid, T2.specobjid FROM photoobj AS T1 "
        "JOIN specobj AS T2 ON T2.bestobjid = T1.objid "
        "WHERE T2.class = 'GALAXY' AND T1.u - T1.r < 2.22 AND T1.u - T1.r > 1"
    )
    assert database.execute(q1).rows  # Starburst galaxies exist
    assert database.execute(q2).rows
    assert database.try_execute(q3) is not None
    assert repro.classify_hardness(q1) == "easy"
    assert repro.classify_hardness(q2) == "medium"
    assert repro.classify_hardness(q3) == "extra"


def test_readable_sql_matches_paper_example(sdss_domain):
    """Section 3.3.2: ``s.z`` becomes ``spectroscopic_object.redshift``."""
    readable = sdss_domain.enhanced.readable_sql(
        "SELECT s.z FROM specobj AS s WHERE s.class = 'GALAXY'"
    )
    assert "spectroscopic_object" in readable
    assert "redshift" in readable
