"""Unit tests for the simulated LLMs (Phase 3's generation engine)."""

import pytest

from repro.llm import (
    ALL_PROFILES,
    GPT2_PROFILE,
    GPT3_PROFILE,
    GPT3_ZERO_PROFILE,
    default_generator,
    make_model,
)
from repro.metrics import EquivalenceJudge
from repro.nlgen import DomainLexicon


SQL = "SELECT specobjid FROM specobj WHERE class = 'GALAXY' AND z > 0.5"


def test_translate_returns_requested_candidates(mini_enhanced):
    model = make_model(GPT3_PROFILE)
    candidates = model.translate(SQL, mini_enhanced, n_candidates=8)
    assert len(candidates) == 8
    assert all(isinstance(c, str) and c for c in candidates)


def test_translate_deterministic(mini_enhanced):
    a = make_model(GPT3_PROFILE, seed=1).translate(SQL, mini_enhanced)
    b = make_model(GPT3_PROFILE, seed=1).translate(SQL, mini_enhanced)
    assert a == b


def test_different_seeds_differ(mini_enhanced):
    a = make_model(GPT3_PROFILE, seed=1).translate(SQL, mini_enhanced)
    b = make_model(GPT3_PROFILE, seed=2).translate(SQL, mini_enhanced)
    assert a != b


def test_invalid_arguments(mini_enhanced):
    model = make_model(GPT3_PROFILE)
    with pytest.raises(ValueError):
        model.translate(SQL, mini_enhanced, n_candidates=0)
    with pytest.raises(ValueError):
        model.fine_tune([], domain="x", epochs=0)


def test_fine_tune_registers_domain(mini_enhanced):
    model = make_model(GPT3_PROFILE)
    assert not model.is_tuned_for("mini_sdss")
    model.fine_tune([], domain="mini_sdss", lexicon=DomainLexicon(name="d"))
    assert model.is_tuned_for("mini_sdss")


def test_fine_tune_merges_lexicons(mini_enhanced):
    model = make_model(GPT3_PROFILE)
    first = DomainLexicon(name="a")
    first.add_value("specobj", "class", "GALAXY", "galaxies")
    second = DomainLexicon(name="b")
    second.add_value("specobj", "class", "QSO", "quasars")
    model.fine_tune([], domain="d", lexicon=first)
    model.fine_tune([], domain="d", lexicon=second)
    merged = model._tuned["d"].lexicon
    assert merged.values("specobj", "class", "GALAXY")
    assert merged.values("specobj", "class", "QSO")


def test_fine_tuned_model_uses_domain_lexicon(mini_enhanced):
    lexicon = DomainLexicon(name="sdss")
    lexicon.add_value("specobj", "class", "GALAXY", "galaxies")
    model = make_model(GPT3_PROFILE, seed=3)
    model.fine_tune([], domain="mini_sdss", lexicon=lexicon)
    candidates = model.translate(SQL, mini_enhanced, n_candidates=16)
    assert any("galaxies" in c for c in candidates)


def test_error_rate_ordering_over_models(mini_enhanced):
    """GPT-2 must produce more semantically wrong candidates than fine-tuned
    GPT-3 — the Table 3 expert-rate ordering, measured with the judge."""
    judge = EquivalenceJudge(mini_enhanced)
    queries = [
        "SELECT specobjid FROM specobj WHERE class = 'GALAXY' AND z > 0.5",
        "SELECT COUNT(*), class FROM specobj GROUP BY class",
        "SELECT ra FROM specobj WHERE z BETWEEN 0.1 AND 0.5",
        "SELECT objid FROM photoobj WHERE u - r < 2.0",
        "SELECT class FROM specobj ORDER BY z DESC LIMIT 1",
    ]

    def accuracy(profile):
        model = make_model(profile, seed=5)
        good = total = 0
        for sql in queries:
            for candidate in model.translate(sql, mini_enhanced, n_candidates=8):
                good += judge.judge(candidate, sql).equivalent
                total += 1
        return good / total

    assert accuracy(GPT3_ZERO_PROFILE) > accuracy(GPT2_PROFILE)


def test_out_of_grammar_sql_yields_fallback(mini_enhanced):
    model = make_model(GPT3_PROFILE)
    candidates = model.translate(
        "SELECT z FROM specobj WHERE z IS NULL", mini_enhanced, n_candidates=3
    )
    assert len(candidates) == 3  # degenerate but non-empty output


def test_default_generator_is_gpt3():
    assert default_generator().profile is GPT3_PROFILE


def test_all_profiles_have_distinct_styles():
    styles = {(p.style.offset, p.style.canonical_bias) for p in ALL_PROFILES}
    assert len(styles) == len(ALL_PROFILES)
