"""Unit tests for the metrics: BLEU, embedding score, execution accuracy,
exact match and the equivalence judge."""

import pytest

from repro.metrics import (
    ExecutionAccuracy,
    EquivalenceJudge,
    corpus_bleu,
    embedding_score,
    exact_match,
    execution_match,
    pairwise_similarity,
    sentence_bleu,
)


# --- BLEU -------------------------------------------------------------------


def test_bleu_perfect_match_is_100():
    score = corpus_bleu(["the cat sat on the mat"], [["the cat sat on the mat"]])
    assert score.score == pytest.approx(100.0)


def test_bleu_no_overlap_is_low():
    # Exponential smoothing keeps zero-overlap scores nonzero but small.
    score = corpus_bleu(["alpha beta gamma delta"], [["one two three four"]])
    assert score.score < 15.0
    unsmoothed = corpus_bleu(
        ["alpha beta gamma delta"], [["one two three four"]], smooth=False
    )
    assert unsmoothed.score == 0.0


def test_bleu_partial_overlap_between_extremes():
    score = corpus_bleu(
        ["the cat sat on a mat quietly"], [["the cat sat on the mat"]]
    )
    assert 10.0 < score.score < 90.0


def test_bleu_brevity_penalty_applies():
    long_ref = [["the cat sat on the mat today again"]]
    short = corpus_bleu(["the cat"], long_ref)
    assert short.brevity_penalty < 1.0


def test_bleu_multi_reference_takes_best():
    single = corpus_bleu(["find all galaxies"], [["list every star"]])
    multi = corpus_bleu(
        ["find all galaxies"], [["list every star", "find all galaxies"]]
    )
    assert multi.score > single.score


def test_bleu_mismatched_lengths_raise():
    with pytest.raises(ValueError):
        corpus_bleu(["a"], [])


def test_sentence_bleu_monotonic_in_overlap():
    low = sentence_bleu("completely different words here", ["find the galaxies"])
    high = sentence_bleu("find the galaxies now", ["find the galaxies"])
    assert high > low


# --- embedding score -----------------------------------------------------------


def test_embedding_identity():
    assert pairwise_similarity("find all galaxies", "find all galaxies") == pytest.approx(1.0)


def test_embedding_paraphrase_closer_than_unrelated():
    paraphrase = pairwise_similarity(
        "find the redshift of galaxies", "show the redshift of all galaxies"
    )
    unrelated = pairwise_similarity(
        "find the redshift of galaxies", "count the project members from France"
    )
    assert paraphrase > unrelated


def test_embedding_score_corpus():
    score = embedding_score(
        ["find all galaxies"], [["find all galaxies", "something else"]]
    )
    assert score == pytest.approx(1.0)


# --- execution accuracy ----------------------------------------------------------


def test_execution_match_identical(mini_db):
    assert execution_match(
        mini_db,
        "SELECT class FROM specobj WHERE z > 0.5",
        "SELECT class FROM specobj WHERE z > 0.5",
    )


def test_execution_match_order_insensitive_without_order_by(mini_db):
    assert execution_match(
        mini_db,
        "SELECT specobjid FROM specobj",
        "SELECT specobjid FROM specobj ORDER BY z DESC",
    )


def test_execution_match_order_sensitive_with_gold_order(mini_db):
    assert not execution_match(
        mini_db,
        "SELECT specobjid FROM specobj ORDER BY z DESC",
        "SELECT specobjid FROM specobj ORDER BY z ASC",
    )


def test_execution_match_failing_prediction(mini_db):
    assert not execution_match(mini_db, "SELECT class FROM specobj", "SELECT nope FROM specobj")
    assert not execution_match(mini_db, "SELECT class FROM specobj", None)


def test_execution_match_bad_gold_raises(mini_db):
    with pytest.raises(ValueError):
        execution_match(mini_db, "SELECT nope FROM specobj", "SELECT class FROM specobj")


def test_execution_accuracy_accumulator(mini_db):
    accuracy = ExecutionAccuracy()
    accuracy.add(mini_db, "SELECT class FROM specobj", "SELECT class FROM specobj")
    accuracy.add(mini_db, "SELECT class FROM specobj", "SELECT subclass FROM specobj")
    assert accuracy.total == 2
    assert accuracy.accuracy == pytest.approx(0.5)
    assert len(accuracy.failures) == 1


# --- exact match ------------------------------------------------------------------


def test_exact_match_ignores_values():
    assert exact_match(
        "SELECT a FROM t WHERE b = 1", "SELECT a FROM t WHERE b = 2"
    )


def test_exact_match_ignores_condition_order():
    assert exact_match(
        "SELECT a FROM t WHERE b = 1 AND c = 2",
        "SELECT a FROM t WHERE c = 9 AND b = 7",
    )


def test_exact_match_detects_different_projection():
    assert not exact_match("SELECT a FROM t", "SELECT b FROM t")


def test_exact_match_resolves_aliases():
    assert exact_match(
        "SELECT T1.a FROM t AS T1 JOIN u AS T2 ON T1.id = T2.tid",
        "SELECT x.a FROM t AS x JOIN u AS y ON x.id = y.tid",
    )


# --- equivalence judge ---------------------------------------------------------------


def test_judge_accepts_faithful_question(mini_enhanced):
    judge = EquivalenceJudge(mini_enhanced)
    verdict = judge.judge(
        "Find the spectroscopic object id of spectroscopic objects whose "
        "spectroscopic class is GALAXY and redshift is greater than 0.5.",
        "SELECT specobjid FROM specobj WHERE class = 'GALAXY' AND z > 0.5",
    )
    assert verdict.equivalent, [a.description for a in verdict.missing]


def test_judge_rejects_missing_value(mini_enhanced):
    judge = EquivalenceJudge(mini_enhanced)
    verdict = judge.judge(
        "Find the spectroscopic object id of spectroscopic objects.",
        "SELECT specobjid FROM specobj WHERE class = 'GALAXY'",
    )
    assert not verdict.equivalent


def test_judge_rejects_flipped_comparator(mini_enhanced):
    judge = EquivalenceJudge(mini_enhanced)
    verdict = judge.judge(
        "Find the spectroscopic object id of objects whose redshift is less than 0.5.",
        "SELECT specobjid FROM specobj WHERE z > 0.5",
    )
    assert not verdict.equivalent


def test_judge_rejects_wrong_aggregate(mini_enhanced):
    judge = EquivalenceJudge(mini_enhanced)
    verdict = judge.judge(
        "Find the total redshift of spectroscopic objects.",
        "SELECT AVG(z) FROM specobj",
    )
    assert not verdict.equivalent


def test_judge_coverage_fraction(mini_enhanced):
    judge = EquivalenceJudge(mini_enhanced)
    verdict = judge.judge(
        "Find the spectroscopic object id whose redshift is greater than 0.5.",
        "SELECT specobjid FROM specobj WHERE class = 'GALAXY' AND z > 0.5",
    )
    assert 0.0 < verdict.coverage < 1.0


def test_judge_rate(mini_enhanced):
    judge = EquivalenceJudge(mini_enhanced)
    rate = judge.judge_rate(
        [
            (
                "Find the redshift of spectroscopic objects.",
                "SELECT z FROM specobj",
            ),
            ("Nothing relevant at all.", "SELECT z FROM specobj"),
        ]
    )
    assert rate == pytest.approx(0.5)


def test_judge_unparseable_sql_not_equivalent(mini_enhanced):
    judge = EquivalenceJudge(mini_enhanced)
    assert not judge.judge("anything", "SELECT FROM WHERE").equivalent
