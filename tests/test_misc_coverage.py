"""Remaining coverage: SemQL lowering errors, translator wiring, suite glue."""

import pytest

from repro.errors import SemQLError
from repro.semql import nodes as sq
from repro.semql.to_sql import semql_to_sql
from repro.schema.model import Column, ColumnType, Schema, TableDef


def test_lowering_disconnected_tables_raises():
    schema = Schema(
        name="iso",
        tables=(
            TableDef("a", (Column("x", ColumnType.INTEGER),)),
            TableDef("b", (Column("y", ColumnType.INTEGER),)),
        ),
    )
    z = sq.Z(
        left=sq.R(
            select=sq.SemSelect(
                attributes=(
                    sq.A(agg="none", column=sq.ColumnLeaf(table=sq.TableLeaf("a"), name="x")),
                    sq.A(agg="none", column=sq.ColumnLeaf(table=sq.TableLeaf("b"), name="y")),
                )
            ),
            from_table=sq.TableLeaf("a"),
        )
    )
    with pytest.raises(SemQLError):
        semql_to_sql(z, schema)


def test_lowering_set_op_missing_right_raises(mini_schema):
    z = sq.Z(
        left=sq.R(
            select=sq.SemSelect(
                attributes=(sq.A(agg="count", column=sq.StarLeaf()),)
            ),
            from_table=sq.TableLeaf("specobj"),
        ),
        set_op="union",
        right=None,
    )
    with pytest.raises(SemQLError):
        semql_to_sql(z, mini_schema)


def test_semql_node_validation():
    with pytest.raises(ValueError):
        sq.A(agg="median", column=sq.StarLeaf())
    with pytest.raises(ValueError):
        sq.Condition(op="~~", attribute=sq.A(agg="none", column=sq.StarLeaf()))
    with pytest.raises(ValueError):
        sq.MathExpr(op="^", left=sq.StarLeaf(), right=sq.StarLeaf())  # type: ignore[arg-type]


def test_semql_tree_utilities(mini_schema):
    from repro.semql import sql_to_semql
    from repro.sql import parse

    z = sql_to_semql(
        parse("SELECT z FROM specobj WHERE class = 'GALAXY' AND z > 0.5"), mini_schema
    )
    assert sq.tables_of(z) == ["specobj"]
    assert len(sq.conditions_of(z)) == 2
    assert len(sq.attributes_of(z)) == 3  # projection + two condition attributes
    assert not sq.is_template(z)


def test_translator_fine_tunes_on_construction(sdss_domain):
    from repro.synthesis.translation import SqlToNlTranslator, TranslationConfig

    translator = SqlToNlTranslator(
        sdss_domain, config=TranslationConfig(n_candidates=4)
    )
    assert translator.model.is_tuned_for("sdss")
    candidates = translator.candidates(
        "SELECT specobjid FROM specobj WHERE class = 'GALAXY'"
    )
    assert len(candidates) == 4


def test_translator_can_skip_fine_tuning(sdss_domain):
    from repro.synthesis.translation import SqlToNlTranslator, TranslationConfig

    translator = SqlToNlTranslator(
        sdss_domain, config=TranslationConfig(fine_tune_on_seeds=False)
    )
    assert not translator.model.is_tuned_for("sdss")


def test_pipeline_empty_seed_yields_empty_split(mini_db, mini_enhanced):
    from repro.datasets.records import BenchmarkDomain, Split
    from repro.synthesis import AugmentationPipeline, PipelineConfig

    domain = BenchmarkDomain(
        name="empty",
        database=mini_db,
        enhanced=mini_enhanced,
        lexicon=None,
        seed=Split(name="seed"),
        dev=Split(name="dev"),
    )
    report = AugmentationPipeline(
        domain, config=PipelineConfig(target_queries=10)
    ).run()
    assert report.n_pairs == 0
    assert report.seeding.n_unique == 0


def test_llm_profile_max_error_cap(mini_enhanced):
    from repro.llm.base import LLMProfile, SqlToNlModel
    from repro.nlgen.realizer import CANONICAL_STYLE

    profile = LLMProfile(
        name="terrible",
        style=CANONICAL_STYLE,
        base_error_rate=5.0,  # absurd; must be capped by max_error_rate
        max_error_rate=0.5,
    )
    model = SqlToNlModel(profile)
    candidates = model.translate(
        "SELECT z FROM specobj WHERE class = 'GALAXY'", mini_enhanced, n_candidates=6
    )
    assert len(candidates) == 6  # capping keeps generation functional


def test_exact_match_on_semql_lowered_pair(mini_schema):
    """SemQL lowering moves join predicates into ON clauses; exact match
    must still align such a query with its original form."""
    from repro.metrics import exact_match
    from repro.semql import semql_to_sql, sql_to_semql
    from repro.sql import parse

    original = (
        "SELECT T1.objid, T2.class FROM photoobj AS T1 "
        "JOIN specobj AS T2 ON T2.bestobjid = T1.objid WHERE T2.z > 0.5"
    )
    lowered = semql_to_sql(sql_to_semql(parse(original), mini_schema), mini_schema)
    assert exact_match(original, lowered)
