"""Unit tests for the NL-to-SQL building blocks: features, learned lexicon,
schema linking and guided instantiation."""

import pytest

from repro.nl2sql.features import (
    comparator_intents,
    extract_limit,
    extract_numbers,
    having_hint,
    question_features,
    question_structure,
)
from repro.nl2sql.lexicon import LearnedLexicon, content_ngrams
from repro.nl2sql.linking import SchemaLinker
from repro.nl2sql.structure import compatibility, template_structure
from repro.semql import extract_template, sql_to_semql
from repro.sql import parse


# --- features ----------------------------------------------------------------


def test_extract_numbers_handles_punctuation():
    assert extract_numbers("between 20 and 66.") == [20.0, 66.0]
    assert extract_numbers("a value of 2.22, ok") == [2.22]
    assert extract_numbers("none here") == []


def test_extract_limit_phrasings():
    assert extract_limit("the top 5 projects") == 5
    assert extract_limit("the 3 closest pairs") == 3
    assert extract_limit("all the projects") is None


def test_comparator_intents_in_order():
    intents = comparator_intents(
        "whose cost is greater than 10 and year is at most 2020"
    )
    assert intents == [">", "<="]


def test_comparator_between():
    assert comparator_intents("redshift between 0.1 and 0.4") == ["between"]


def test_having_hint():
    assert having_hint("classes whose number of records is greater than 10")
    assert not having_hint("the number of records for each class")


def test_question_features_vector_shape():
    vector = question_features("How many galaxies are there?")
    assert vector.shape[0] > 10
    assert 0.0 <= vector.max() <= 1.0


def test_question_structure_aggregates():
    struct = question_structure("What is the average redshift of galaxies?")
    assert struct["aggs"] == {"avg"}


def test_question_structure_superlative_vs_max():
    sup = question_structure("the galaxy with the highest redshift")
    agg = question_structure("the maximum redshift of galaxies")
    assert sup["superlative"] and "max" not in sup["aggs"]
    assert not agg["superlative"] and "max" in agg["aggs"]


def test_question_structure_at_most_is_not_max():
    struct = question_structure("stadiums whose id is at most 6")
    assert "max" not in struct["aggs"]


def test_question_structure_top_k_is_not_max():
    struct = question_structure("the top 5 projects by total cost")
    assert struct["limit_k"] == 5
    assert "max" not in struct["aggs"]


# --- learned lexicon ----------------------------------------------------------------


def test_content_ngrams_skip_stopword_only():
    ngrams = content_ngrams("find the redshift of galaxies")
    assert "redshift" in ngrams
    assert "the" not in ngrams
    assert "redshift of galaxies" in ngrams


@pytest.fixture()
def trained_lexicon(mini_schema):
    lexicon = LearnedLexicon(db_id="mini_sdss")
    for _ in range(4):  # repetition builds association confidence
        lexicon.observe(
            "Find the quasars with high redshift.",
            "SELECT specobjid FROM specobj WHERE class = 'QSO'",
            mini_schema,
        )
        lexicon.observe(
            "Show the redshift of galaxies.",
            "SELECT z FROM specobj WHERE class = 'GALAXY'",
            mini_schema,
        )
    return lexicon


def test_value_association_learned(trained_lexicon):
    scores = trained_lexicon.value_scores("are there any quasars here")
    assert ("specobj", "class", "qso") in scores


def test_value_association_skips_numbers(mini_schema):
    lexicon = LearnedLexicon(db_id="d")
    for _ in range(4):
        lexicon.observe(
            "projects with credits equal to 6",
            "SELECT z FROM specobj WHERE z = 6",
            mini_schema,
        )
    assert not lexicon.value_scores("projects with credits")


def test_column_association_learned(trained_lexicon):
    scores = trained_lexicon.column_scores("what is the redshift")
    assert ("specobj", "z") in scores


def test_out_of_grammar_sql_still_counts_frequency(mini_schema):
    lexicon = LearnedLexicon(db_id="d")
    ok = lexicon.observe("weird question", "SELECT a FROM nope WHERE", mini_schema)
    assert not ok
    assert lexicon.n_pairs == 1


# --- schema linking ------------------------------------------------------------------


@pytest.fixture()
def linker(mini_db, mini_enhanced):
    return SchemaLinker(mini_db, mini_enhanced)


def test_static_column_link(linker):
    links = linker.link("Find the redshift of spectroscopic objects.")
    assert ("specobj", "z") in links.columns
    assert "specobj" in links.table_mentions


def test_content_value_link(linker):
    links = linker.link("Find all STARBURST objects.")
    assert any(
        v.table == "specobj" and v.column == "subclass" and v.value == "STARBURST"
        for v in links.values
    )


def test_numbers_extracted(linker):
    links = linker.link("redshift above 0.5 but below 1")
    assert links.numbers == [0.5, 1.0]


def test_boolean_value_link(mini_db, mini_enhanced):
    # The mini schema has no boolean column; build a quick one inline.
    from repro.engine import create_database
    from repro.schema.model import Column, ColumnType, Schema, TableDef

    schema = Schema(
        name="b",
        tables=(
            TableDef(
                "person",
                (
                    Column("person_id", ColumnType.INTEGER),
                    Column("is_member", ColumnType.BOOLEAN, alias="is member"),
                ),
            ),
        ),
    )
    db = create_database(schema, {"person": [(1, True), (2, False)]})
    from repro.schema.introspect import profile_database

    linker = SchemaLinker(db, profile_database(db))
    links = linker.link("people whose is member is false")
    assert any(v.value is False for v in links.values)


def test_learned_value_feeds_links(linker, trained_lexicon):
    links = linker.link("Find all quasars.", learned=trained_lexicon)
    assert any(
        v.table == "specobj" and v.column == "class" and v.value == "QSO"
        for v in links.values
    )


def test_mention_order_follows_question(linker):
    links = linker.link(
        "Find the right ascension and redshift of spectroscopic objects."
    )
    order = links.mention_order()
    assert order.index(("specobj", "ra")) < order.index(("specobj", "z"))


def test_table_mention_shadowed_by_column_phrase(linker):
    # "neighbor mode" is a neighbors column; the bare word overlap must not
    # promote a phantom table mention for a table named inside the phrase.
    links = linker.link("Find the neighbor mode of nearest neighbors.")
    assert ("neighbors", "neighbormode") in links.columns


def test_value_equal_to_table_phrase_suppressed(mini_db, mini_enhanced):
    linker = SchemaLinker(mini_db, mini_enhanced)
    # 'GALAXY' remains a value link; a value spelled like a mentioned column
    # phrase would be dropped (exercised via the OncoMX-style 'gene' case in
    # integration tests) — here we just assert GALAXY survives.
    links = linker.link("spectroscopic objects of class GALAXY")
    assert any(v.value == "GALAXY" for v in links.values)


# --- template structure ---------------------------------------------------------------


def test_template_structure_counts(mini_schema):
    z = sql_to_semql(
        parse("SELECT z FROM specobj WHERE class = 'GALAXY' AND z > 0.5"), mini_schema
    )
    structure = template_structure(extract_template(z))
    assert structure.numbers_needed == 1
    assert structure.eq_values_needed == 1
    assert structure.n_tables == 1
    assert not structure.has_group


def test_template_structure_having(mini_schema):
    z = sql_to_semql(
        parse("SELECT class FROM specobj GROUP BY class HAVING COUNT(*) > 2"),
        mini_schema,
    )
    structure = template_structure(extract_template(z))
    assert structure.has_agg_condition
    assert structure.has_group


def test_compatibility_prefers_matching_arity(mini_schema):
    eq_tpl = template_structure(
        extract_template(
            sql_to_semql(parse("SELECT z FROM specobj WHERE ra = 120.0"), mini_schema)
        )
    )
    gt_tpl = template_structure(
        extract_template(
            sql_to_semql(parse("SELECT z FROM specobj WHERE ra > 120.0"), mini_schema)
        )
    )
    no_comparator = question_structure("objects with right ascension 120")
    with_comparator = question_structure("objects with right ascension above 120")
    assert compatibility(no_comparator, eq_tpl) > compatibility(no_comparator, gt_tpl)
    assert compatibility(with_comparator, gt_tpl) > compatibility(with_comparator, eq_tpl)
