"""Integration tests for the three NL-to-SQL systems.

These train small systems on MiniSpider (and the SDSS domain) and verify the
behaviours Table 5 depends on: untrained systems refuse to predict, trained
systems answer realizer-style questions, grammar-constrained systems only
emit executable SQL, and in-domain data improves domain accuracy.
"""

import pytest

from repro.errors import TrainingError
from repro.metrics import ExecutionAccuracy
from repro.nl2sql import SmBoP, T5Seq2Seq, ValueNet
from repro.spider import build_corpus

SYSTEMS = (ValueNet, T5Seq2Seq, SmBoP)


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(train_per_db=40, dev_per_db=8)


def make_system(cls, corpus, domain=None):
    system = cls()
    for db_id, database in corpus.databases.items():
        system.register_database(db_id, database, corpus.enhanced[db_id])
    if domain is not None:
        system.register_database(domain.name, domain.database, domain.enhanced)
    return system


@pytest.mark.parametrize("cls", SYSTEMS)
def test_untrained_system_refuses(cls, corpus):
    system = make_system(cls, corpus)
    with pytest.raises(TrainingError):
        system.predict("How many singers are there?", "concert_singer")


@pytest.mark.parametrize("cls", SYSTEMS)
def test_unregistered_database_refused(cls, corpus):
    system = make_system(cls, corpus)
    with pytest.raises(TrainingError):
        system.train(
            [
                __import__("repro.datasets.records", fromlist=["NLSQLPair"]).NLSQLPair(
                    question="q", sql="SELECT 1 FROM t", db_id="unknown"
                )
            ]
        )


@pytest.mark.parametrize("cls", SYSTEMS)
def test_training_empty_raises(cls, corpus):
    system = make_system(cls, corpus)
    with pytest.raises(TrainingError):
        system.train([])


@pytest.fixture(scope="module")
def trained(corpus):
    systems = {}
    for cls in SYSTEMS:
        system = make_system(cls, corpus)
        system.train(corpus.train.pairs)
        systems[cls.name] = system
    return systems


@pytest.mark.parametrize("name", [cls.name for cls in SYSTEMS])
def test_spider_dev_accuracy_above_floor(trained, corpus, name):
    """Every system must solve a substantial share of in-distribution dev."""
    system = trained[name]
    accuracy = ExecutionAccuracy()
    for pair in corpus.dev.pairs:
        accuracy.add(
            corpus.databases[pair.db_id], pair.sql, system.predict(pair.question, pair.db_id)
        )
    assert accuracy.accuracy > 0.25, f"{name}: {accuracy.accuracy}"


def test_valuenet_outputs_always_executable(trained, corpus):
    system = trained["valuenet"]
    for pair in corpus.dev.pairs[:40]:
        predicted = system.predict(pair.question, pair.db_id)
        if predicted is not None:
            assert corpus.databases[pair.db_id].try_execute(predicted) is not None


def test_predictions_deterministic(trained, corpus):
    system = trained["valuenet"]
    pair = corpus.dev.pairs[0]
    a = system.predict(pair.question, pair.db_id)
    b = system.predict(pair.question, pair.db_id)
    assert a == b


def test_simple_count_question(trained, corpus):
    system = trained["valuenet"]
    predicted = system.predict("How many singer are there?", "concert_singer")
    assert predicted is not None
    result = corpus.databases["concert_singer"].execute(predicted)
    gold = corpus.databases["concert_singer"].execute("SELECT COUNT(*) FROM singer")
    assert result.to_multiset() == gold.to_multiset()


def test_domain_training_improves_domain_accuracy(corpus, sdss_domain):
    """The core Table-5 dynamic, asserted as an inequality (not a number)."""
    from repro.synthesis import augment_domain

    synth = sdss_domain.synth or augment_domain(sdss_domain, target_queries=150)

    def accuracy_for(pairs):
        system = make_system(ValueNet, corpus, domain=sdss_domain)
        system.train(pairs)
        accuracy = ExecutionAccuracy()
        for pair in sdss_domain.dev.pairs[:60]:
            accuracy.add(
                sdss_domain.database, pair.sql, system.predict(pair.question, pair.db_id)
            )
        return accuracy.accuracy

    zero = accuracy_for(list(corpus.train.pairs))
    augmented = accuracy_for(
        list(corpus.train.pairs) + list(sdss_domain.seed.pairs) + list(synth.pairs)
    )
    assert augmented > zero


def test_smbop_projection_prior_learns(corpus, sdss_domain):
    system = make_system(SmBoP, corpus, domain=sdss_domain)
    system.train(list(corpus.train.pairs) + list(sdss_domain.seed.pairs))
    prior = system._projection_prior("sdss", "specobj")
    assert prior and prior[0] in {"specobjid", "z", "class", "ra", "dec", "bestobjid"}
