"""Unit tests for the NL realizer, lexicons and noise models."""

import random

import pytest

from repro.errors import SemQLError
from repro.metrics import EquivalenceJudge
from repro.nlgen import CANONICAL_STYLE, DomainLexicon, Realizer, StyleProfile, corrupt
from repro.nlgen.lexicon import PhraseBook, _pluralise, render_value
from repro.semql import extract_template, sql_to_semql
from repro.semql import nodes as sq
from repro.sql import parse


@pytest.fixture()
def realizer(mini_enhanced):
    lexicon = DomainLexicon(name="test")
    lexicon.add_value("specobj", "class", "GALAXY", "galaxies")
    lexicon.add_value("specobj", "subclass", "STARBURST", "Starburst galaxies")
    return Realizer(mini_enhanced, lexicon)


QUERIES = [
    "SELECT specobjid FROM specobj WHERE subclass = 'STARBURST'",
    "SELECT COUNT(*), class FROM specobj GROUP BY class",
    "SELECT ra, z FROM specobj WHERE class = 'GALAXY' AND z > 0.5",
    "SELECT class FROM specobj ORDER BY z DESC LIMIT 1",
    "SELECT specobjid FROM specobj WHERE z > (SELECT AVG(z) FROM specobj)",
    "SELECT objid FROM photoobj WHERE u - r < 2.22",
    "SELECT class FROM specobj WHERE z BETWEEN 0.1 AND 0.5",
    "SELECT class FROM specobj UNION SELECT subclass FROM specobj WHERE z > 1",
    "SELECT COUNT(DISTINCT class) FROM specobj",
    "SELECT objid FROM photoobj WHERE objid IN (SELECT bestobjid FROM specobj WHERE class = 'STAR')",
]


@pytest.mark.parametrize("sql", QUERIES)
def test_realizations_end_with_punctuation(realizer, sql):
    rng = random.Random(1)
    question = realizer.realize_sql(sql, rng)
    assert question[-1] in ".?"
    assert question[0].isupper()


@pytest.mark.parametrize("sql", QUERIES)
def test_realizations_pass_equivalence_judge(realizer, mini_enhanced, sql):
    """The judge and the realizer share a phrase inventory: a faithful
    realization must always be accepted."""
    lexicon = realizer.phrases.lexicon
    judge = EquivalenceJudge(mini_enhanced, lexicon=lexicon)
    rng = random.Random(11)
    for _ in range(3):
        question = realizer.realize_sql(sql, rng)
        verdict = judge.judge(question, sql)
        assert verdict.equivalent, (question, [a.description for a in verdict.missing])


def test_candidates_are_diverse(realizer):
    rng = random.Random(5)
    candidates = realizer.candidates(QUERIES[2], 8, rng)
    assert len(candidates) == 8
    assert len(set(candidates)) >= 3  # paraphrase sampling yields variety


def test_realize_is_deterministic_given_rng(realizer):
    a = realizer.realize_sql(QUERIES[0], random.Random(3))
    b = realizer.realize_sql(QUERIES[0], random.Random(3))
    assert a == b


def test_value_lexicon_phrase_used_sometimes(realizer):
    rng = random.Random(0)
    questions = [realizer.realize_sql(QUERIES[0], rng) for _ in range(12)]
    assert any("Starburst galaxies" in q for q in questions)


def test_style_offset_changes_surface_vocabulary(mini_enhanced):
    sql = "SELECT ra FROM specobj WHERE z > 0.5"
    canonical = Realizer(mini_enhanced, style=CANONICAL_STYLE)
    shifted = Realizer(
        mini_enhanced, style=StyleProfile(name="alt", canonical_bias=0.0, offset=2)
    )
    a = {canonical.realize_sql(sql, random.Random(i)) for i in range(10)}
    b = {shifted.realize_sql(sql, random.Random(i)) for i in range(10)}
    assert a != b


def test_template_cannot_be_realized(realizer, mini_schema):
    z = sql_to_semql(parse(QUERIES[0]), mini_schema)
    template = extract_template(z)
    with pytest.raises(SemQLError):
        realizer.realize(template.tree, random.Random(0))


def test_phrasebook_fallback_chain(mini_enhanced):
    book = PhraseBook(enhanced=mini_enhanced)
    assert "redshift" in book.column_phrases("specobj", "z")
    # Plural of the readable table name is offered too.
    assert any("objects" in p for p in book.table_phrases("specobj"))


def test_render_value():
    assert render_value(None) == "null"
    assert render_value(True) == "true"
    assert render_value(2.0) == "2"
    assert render_value(2.5) == "2.5"
    assert render_value("GALAXY") == "GALAXY"


def test_pluralise_rules():
    assert _pluralise("galaxy") == "galaxies"
    assert _pluralise("class") == "classes"
    assert _pluralise("object") == "objects"
    assert _pluralise("person") == "people"


# --- corruption -----------------------------------------------------------------


def test_corrupt_changes_tree(mini_schema):
    z = sql_to_semql(
        parse("SELECT specobjid FROM specobj WHERE class = 'GALAXY' AND z > 0.5"),
        mini_schema,
    )
    rng = random.Random(2)
    changed = 0
    for _ in range(10):
        corrupted, kind = corrupt(z, mini_schema, rng)
        if corrupted != z:
            changed += 1
            assert kind != "none"
    assert changed >= 8


def test_corrupt_preserves_validity(mini_schema, mini_db):
    """Corrupted trees must still lower to executable-or-at-least-parseable SQL."""
    from repro.semql import semql_to_sql

    z = sql_to_semql(
        parse("SELECT z FROM specobj WHERE class = 'GALAXY' AND z > 0.5"),
        mini_schema,
    )
    rng = random.Random(7)
    for _ in range(20):
        corrupted, _ = corrupt(z, mini_schema, rng)
        sql = semql_to_sql(corrupted, mini_schema)
        parse(sql)  # must not raise


def test_corrupt_order_flip(mini_schema):
    z = sql_to_semql(
        parse("SELECT class FROM specobj ORDER BY z DESC LIMIT 1"), mini_schema
    )
    rng = random.Random(1)
    kinds = {corrupt(z, mini_schema, rng)[1] for _ in range(30)}
    assert "flip_order" in kinds


def test_corrupt_on_degenerate_query(mini_schema):
    z = sql_to_semql(parse("SELECT COUNT(*) FROM neighbors"), mini_schema)
    corrupted, kind = corrupt(z, mini_schema, random.Random(0))
    # Something is always corruptible here (the projection cannot be dropped,
    # but aggregates can swap); the call must never crash.
    assert kind in {
        "wrong_aggregate", "none", "swap_column", "drop_projection",
        "flip_comparator", "drop_condition", "perturb_value", "flip_order",
    }
