"""Tests for the unified observability subsystem (``repro.obs``).

Covers the tracer/span model, the metrics registry and its shared latency
bucket layout, the exporters and the span-log validator — plus the
integration guarantees the subsystem makes to the rest of the stack:

* span-tree integrity across the runtime's process-pool boundary
  (workers > 1) and across serving's asyncio interleavings (hypothesis);
* artifact determinism: tracing on vs off yields byte-identical splits;
* near-zero overhead when tracing is off (the default).
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import random
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.obs import (
    LATENCY_BUCKET_BOUNDS,
    NULL_SPAN,
    NULL_TRACER,
    MetricsRegistry,
    NullTracer,
    Tracer,
    chrome_trace,
    flame_summary,
    geometric_bounds,
    validate_span_log,
    write_chrome_trace,
    write_span_log,
)
from repro.resilience.clock import FakeClock
from repro.runtime import Runtime, Task, TaskGraph
from repro.serving import DomainBackend, InferenceServer, ServerConfig
from repro.serving.metrics import STAGES, LatencyHistogram, ServerMetrics

# -- toy task bodies (module-level so worker processes can import them) --------


def traced_emit(params, inputs):
    """A task body that records its own spans (to cross the pool boundary)."""
    tracer = obs.get_tracer()
    with tracer.span("toy.work", value=params["value"]):
        with tracer.span("toy.inner"):
            pass
    return params["value"]


def traced_join(params, inputs):
    tracer = obs.get_tracer()
    with tracer.span("toy.work", value="join"):
        return "+".join(inputs[role] for role in sorted(inputs))


def _toy_graph():
    graph = TaskGraph()
    graph.add(Task("a", "tests.test_obs:traced_emit", {"value": "a"}))
    graph.add(Task("b", "tests.test_obs:traced_emit", {"value": "b"}))
    graph.add(
        Task(
            "ab",
            "tests.test_obs:traced_join",
            {},
            deps=(("left", "a"), ("right", "b")),
        )
    )
    return graph


def _by_name(spans, name):
    return [span for span in spans if span.name == name]


def _assert_forest(spans):
    """Every span id unique; every parent id resolves inside the forest."""
    ids = [span.span_id for span in spans]
    assert len(ids) == len(set(ids))
    id_set = set(ids)
    for span in spans:
        assert span.parent_id is None or span.parent_id in id_set


def _max_depth(spans):
    by_id = {span.span_id: span for span in spans}

    def depth(span):
        level = 1
        while span.parent_id is not None and span.parent_id in by_id:
            span = by_id[span.parent_id]
            level += 1
        return level

    return max(depth(span) for span in spans) if spans else 0


# -- tracer and span model ------------------------------------------------------


def test_span_tree_nesting_error_status_and_events():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    with tracer.span("outer", kind="test") as outer:
        clock.advance(1.0)
        with tracer.span("inner") as inner:
            tracer.event("milestone", n=1)
            clock.advance(0.5)
        assert tracer.current() is outer
    assert outer.parent_id is None
    assert inner.parent_id == outer.span_id
    assert inner.duration_s == pytest.approx(0.5)
    assert outer.duration_s == pytest.approx(1.5)
    assert [event.name for event in inner.events] == ["milestone"]
    assert outer.attrs == {"kind": "test"}

    with pytest.raises(ValueError):
        with tracer.span("failing"):
            raise ValueError("boom")
    failing = _by_name(tracer.finished(), "failing")[0]
    assert failing.status == "error"
    assert failing.attrs["error"] == "ValueError"


def test_span_ids_are_counters_with_prefix_and_no_rng():
    state = random.getstate()
    tracer = Tracer(id_prefix="w1:")
    first = tracer.start_span("x")
    second = tracer.start_span("y")
    assert (first.span_id, second.span_id) == ("w1:1", "w1:2")
    # Opening spans must not consume any RNG stream.
    assert random.getstate() == state


def test_null_tracer_is_a_constant_noop():
    assert NULL_TRACER.enabled is False
    assert NULL_TRACER.span("x") is NULL_SPAN
    assert NULL_TRACER.start_span("x") is NULL_SPAN
    NULL_TRACER.end_span(NULL_SPAN)
    NULL_TRACER.event("e", a=1)
    NULL_TRACER.add_event(NULL_SPAN, "e")
    assert NULL_TRACER.finished() == []
    with NULL_SPAN as span:
        span.set_attr("k", "v")  # absorbed
    assert obs.get_tracer() is NULL_TRACER  # off by default


def test_use_tracer_installs_and_restores():
    tracer = Tracer()
    with obs.use_tracer(tracer) as active:
        assert active is tracer
        assert obs.get_tracer() is tracer
    assert obs.get_tracer() is NULL_TRACER


# -- metrics registry -----------------------------------------------------------


def test_registry_counters_gauges_histograms():
    registry = MetricsRegistry()
    registry.inc("runs")
    registry.inc("runs", 2)
    registry.set_gauge("depth", 4.0)
    registry.observe("latency", 0.010)
    registry.observe("latency", 0.020)
    assert registry.counter("runs").value == 3
    assert registry.gauge("depth").value == 4.0
    histogram = registry.histogram("latency")
    assert histogram.count == 2
    assert histogram.mean == pytest.approx(0.015)
    assert 0.010 <= histogram.quantile(0.5) <= 0.020
    snapshot = registry.snapshot()
    assert snapshot["runs"] == {"kind": "counter", "value": 3}
    assert snapshot["latency"]["kind"] == "histogram"
    # create-or-get: same instrument, kind mismatch rejected.
    assert registry.counter("runs") is registry.counter("runs")
    with pytest.raises(TypeError):
        registry.gauge("runs")


def test_serving_histograms_share_the_repo_bucket_layout():
    # One definition: serving's LatencyHistogram uses the repo-wide bounds.
    assert LatencyHistogram().bounds == LATENCY_BUCKET_BOUNDS
    assert LATENCY_BUCKET_BOUNDS == geometric_bounds(0.00005, 1.5, 48)
    metrics = ServerMetrics()
    for stage in STAGES:
        assert metrics.histograms[stage].bounds == LATENCY_BUCKET_BOUNDS
    # ServerMetrics instruments live in a unified registry under serving.*.
    metrics.count("served")
    metrics.observe("total", 0.005)
    names = metrics.registry.names()
    assert "serving.served" in names
    assert "serving.latency.total" in names
    assert metrics.registry.snapshot()["serving.served"]["value"] == 1


# -- exporters ------------------------------------------------------------------


def _sample_spans():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    with tracer.span("root", run="r1"):
        clock.advance(0.2)
        with tracer.span("child"):
            tracer.event("tick", n=1)
            clock.advance(0.1)
        clock.advance(0.05)
    return tracer.finished()


def test_chrome_trace_document_shape():
    spans = _sample_spans()
    doc = chrome_trace(spans)
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    events = doc["traceEvents"]
    metadata = [e for e in events if e["ph"] == "M"]
    complete = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    assert metadata and metadata[0]["name"] == "thread_name"
    assert {e["name"] for e in complete} == {"root", "child"}
    child = next(e for e in complete if e["name"] == "child")
    assert child["dur"] == pytest.approx(0.1 * 1e6)
    assert child["args"]["parent_id"] is not None
    assert [e["name"] for e in instants] == ["tick"]
    # The whole document is JSON-serializable as-is.
    json.dumps(doc)


def test_span_log_roundtrip_and_validation(tmp_path):
    spans = _sample_spans()
    path = write_span_log(spans, tmp_path / "trace.spans.jsonl")
    assert validate_span_log(path) == len(spans)
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert [r["name"] for r in records] == ["root", "child"]  # start order


def test_span_log_validator_rejects_malformed(tmp_path):
    good = {
        "span_id": "1", "parent_id": None, "name": "x", "start_s": 0.0,
        "duration_s": 1.0, "status": "ok", "pid": 1, "thread": "main",
        "attrs": {}, "events": [],
    }

    def write(records):
        path = tmp_path / "log.jsonl"
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        return path

    with pytest.raises(ValueError, match="missing keys"):
        validate_span_log(write([{k: v for k, v in good.items() if k != "status"}]))
    with pytest.raises(ValueError, match="duplicate span_id"):
        validate_span_log(write([good, good]))
    with pytest.raises(ValueError, match="not in log"):
        validate_span_log(write([dict(good, parent_id="ghost")]))
    with pytest.raises(ValueError, match="status"):
        validate_span_log(write([dict(good, status="maybe")]))
    with pytest.raises(ValueError, match="non-negative"):
        validate_span_log(write([dict(good, duration_s=-1.0)]))


def test_flame_summary_aggregates_by_path():
    spans = _sample_spans() + _sample_spans()
    rendered = flame_summary(spans)
    assert "root" in rendered and "child" in rendered
    lines = rendered.splitlines()
    root_line = next(line for line in lines if line.startswith("root"))
    assert " 2 " in root_line  # both roots folded into one row


# -- runtime integration: span trees across the pool boundary -------------------


def test_runtime_sequential_spans_and_cache_hit_spans(tmp_path):
    tracer = Tracer()
    with obs.use_tracer(tracer):
        runtime = Runtime(workers=1, cache_dir=str(tmp_path / "cache"))
        runtime.run(_toy_graph(), ["ab"])
    spans = tracer.finished()
    _assert_forest(spans)
    run_span = _by_name(spans, "runtime.run")[0]
    task_spans = {s.name: s for s in spans if s.name.startswith("task:")}
    assert set(task_spans) == {"task:a", "task:b", "task:ab"}
    for span in task_spans.values():
        assert span.parent_id == run_span.span_id
        assert span.attrs["status"] == "computed"
    # Toy bodies' spans nest under their task spans (inline execution).
    for work in _by_name(spans, "toy.work"):
        assert work.parent_id in {s.span_id for s in task_spans.values()}
    assert _max_depth(spans) >= 4  # run -> task -> toy.work -> toy.inner
    assert runtime.metrics.counter("runtime.computed").value == 3

    # A warm second run records cache-hit task spans (and no toy spans).
    hit_tracer = Tracer()
    with obs.use_tracer(hit_tracer):
        Runtime(workers=1, cache_dir=str(tmp_path / "cache")).run(
            _toy_graph(), ["ab"]
        )
    hit_spans = hit_tracer.finished()
    _assert_forest(hit_spans)
    assert not _by_name(hit_spans, "toy.work")
    hits = [s for s in hit_spans if s.name.startswith("task:")]
    assert hits and all(s.attrs["status"] == "hit" for s in hits)


def test_runtime_parallel_span_tree_crosses_process_pool(tmp_path):
    tracer = Tracer()
    with obs.use_tracer(tracer):
        runtime = Runtime(workers=2, cache_dir=str(tmp_path / "cache"))
        results = runtime.run(_toy_graph(), ["ab"])
    assert results["ab"] == "a+b"
    spans = tracer.finished()
    _assert_forest(spans)
    task_spans = {s.name: s for s in spans if s.name.startswith("task:")}
    assert set(task_spans) == {"task:a", "task:b", "task:ab"}
    # Each task has an adopted worker-side exec span parented to it...
    exec_spans = {s.name: s for s in _by_name(spans, "exec:a")
                  + _by_name(spans, "exec:b") + _by_name(spans, "exec:ab")}
    assert set(exec_spans) == {"exec:a", "exec:b", "exec:ab"}
    for name, span in exec_spans.items():
        assert span.parent_id == task_spans[f"task:{name[5:]}"].span_id
    # ...and the bodies' own spans rode back across the pool boundary,
    # nested under the exec spans (ids prefixed, so no collisions).
    works = _by_name(spans, "toy.work")
    assert len(works) == 3
    exec_ids = {s.span_id for s in exec_spans.values()}
    assert all(w.parent_id in exec_ids for w in works)
    assert _max_depth(spans) >= 4
    # Worker spans carry the worker process's pid, not the parent's.
    import os

    assert any(w.pid != os.getpid() for w in works)


# -- serving integration: asyncio span trees ------------------------------------


class EchoSystem:
    def link(self, question, db_id):
        return None

    def predict(self, question, db_id):
        return f"SELECT '{question}' FROM {db_id}"

    def predict_batch(self, questions, db_id):
        return [self.predict(question, db_id) for question in questions]


async def _serve(questions, max_batch=4, cache_capacity=8):
    backend = DomainBackend(name="demo", system=EchoSystem())
    config = ServerConfig(max_batch=max_batch, max_wait_ms=1.0,
                          cache_capacity=cache_capacity)
    async with InferenceServer([backend], config) as server:
        return await asyncio.gather(
            *(server.submit(question, "demo") for question in questions)
        )


def test_serving_request_span_tree():
    tracer = Tracer()
    with obs.use_tracer(tracer):
        results = asyncio.run(_serve(["q1", "q2", "q1", "q3"]))
    assert all(result.ok for result in results)
    spans = tracer.finished()
    _assert_forest(spans)
    requests = _by_name(spans, "serve.request")
    assert len(requests) == 4
    request_ids = {s.span_id for s in requests}
    queues = _by_name(spans, "serve.queue")
    # Non-cached requests each waited in the queue under their request span.
    assert queues and all(q.parent_id in request_ids for q in queues)
    batches = _by_name(spans, "serve.batch")
    assert batches
    batch_ids = {s.span_id for s in batches}
    assert all(s.parent_id in batch_ids for s in _by_name(spans, "serve.link"))
    predicts = _by_name(spans, "serve.predict")
    assert predicts and all(s.parent_id in batch_ids for s in predicts)
    statuses = {s.attrs.get("status") for s in requests}
    assert statuses == {"ok"}


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    order=st.permutations(["a", "b", "c", "a", "b"]),
    max_batch=st.integers(min_value=1, max_value=4),
)
def test_serving_span_forest_valid_under_any_interleaving(order, max_batch):
    """Whatever the batch policy and arrival order, the span forest stays
    well-formed: unique ids, resolvable parents, one queue span per
    enqueued request."""
    tracer = Tracer()
    with obs.use_tracer(tracer):
        results = asyncio.run(_serve(list(order), max_batch=max_batch,
                                     cache_capacity=0))
    assert all(result.ok for result in results)
    spans = tracer.finished()
    _assert_forest(spans)
    requests = _by_name(spans, "serve.request")
    queues = _by_name(spans, "serve.queue")
    assert len(requests) == len(order)
    assert len(queues) == len(order)  # cache off: every request queued
    parents = {q.parent_id for q in queues}
    assert parents == {s.span_id for s in requests}


# -- determinism and overhead ---------------------------------------------------


def _augment_fingerprint(tracer):
    """Run a small pipeline under ``tracer``; returns (fingerprint, wall_s)."""
    from repro import adapters
    from repro.llm.models import GPT3_PROFILE, make_model
    from repro.synthesis import augment_domain

    domain = adapters.get_adapter("cordis").build(scale=0.15)
    with obs.use_tracer(tracer):
        started = time.perf_counter()
        split = augment_domain(
            domain,
            target_queries=20,
            seed=11,
            model=make_model(GPT3_PROFILE, seed=11),
            rng=random.Random(11),
        )
        wall_s = time.perf_counter() - started
    blob = json.dumps([pair.to_dict() for pair in split.pairs], sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest(), wall_s


def test_artifacts_identical_with_tracing_on_and_off():
    """The determinism contract: tracing must not move a single byte."""
    fp_off, _ = _augment_fingerprint(NULL_TRACER)
    fp_on, _ = _augment_fingerprint(Tracer())
    assert fp_on == fp_off


class _CountingNullTracer(NullTracer):
    """Counts every tracer touch an off-by-default run performs."""

    def __init__(self):
        self.calls = 0

    def span(self, name, parent=None, **attrs):
        self.calls += 1
        return NULL_SPAN

    def start_span(self, name, parent=None, **attrs):
        self.calls += 1
        return NULL_SPAN

    def end_span(self, span, status=None):
        self.calls += 1

    def event(self, name, **attrs):
        self.calls += 1

    def add_event(self, span, name, **attrs):
        self.calls += 1


def test_disabled_tracer_overhead_is_negligible():
    """Guard: with tracing off, instrumentation costs < 2% of a pipeline run.

    Counts the actual no-op tracer touches of a representative workload,
    microbenchmarks the per-touch cost of the null tracer, and bounds the
    product — immune to machine-speed flakiness, unlike comparing two walls.
    """
    counting = _CountingNullTracer()
    _, wall_s = _augment_fingerprint(counting)
    assert counting.calls > 0  # the workload is actually instrumented

    n = 200_000
    started = time.perf_counter()
    for _ in range(n):
        with NULL_TRACER.span("x"):
            pass
    per_call_s = (time.perf_counter() - started) / n

    overhead_s = counting.calls * per_call_s
    assert overhead_s < 0.02 * wall_s, (
        f"{counting.calls} no-op tracer touches x {per_call_s * 1e9:.0f} ns "
        f"= {overhead_s * 1e3:.2f} ms >= 2% of {wall_s:.2f} s"
    )


def test_engine_query_spans_carry_row_attrs(mini_db):
    tracer = Tracer()
    with obs.use_tracer(tracer):
        mini_db.execute(
            "SELECT s.class, count(*) FROM specobj AS s JOIN photoobj AS p "
            "ON s.bestobjid = p.objid GROUP BY s.class"
        )
    queries = _by_name(tracer.finished(), "engine.query")
    assert len(queries) == 1  # recursion does not multiply spans
    attrs = queries[0].attrs
    assert attrs["rows"] == 3
    assert attrs["rows_scanned"] == 10  # 5 specobj + 5 photoobj
    assert attrs["rows_joined"] == 5


# -- benchmark report wiring ----------------------------------------------------


def test_serve_bench_report_carries_registry_and_trace_path():
    from repro.serving import LoadProfile, run_serve_bench

    backends = {"demo": DomainBackend(name="demo", system=EchoSystem())}
    questions = {"demo": ["q1", "q2"]}
    profile = LoadProfile(concurrency=2, repeat=2, seed=3)
    previous = obs.set_trace_path("traces/trace-test.json")
    try:
        report = run_serve_bench(backends, questions, profile, ServerConfig())
    finally:
        obs.set_trace_path(previous)
    assert report["trace_path"] == "traces/trace-test.json"
    for arm in ("unbatched", "batched"):
        registry = report["arms"][arm]["registry"]
        assert registry["serving.served"]["kind"] == "counter"
        assert registry["serving.served"]["value"] > 0
        assert registry["serving.latency.total"]["kind"] == "histogram"
    json.dumps(report)  # still JSON-serializable end to end


def test_resilience_stats_publish_into_registry():
    from repro.resilience.deadletter import ResilienceStats

    stats = ResilienceStats()
    stats.observe(3, {"rate-limit": 2}, 0.5)
    stats.observe(1, {}, 0.0)
    registry = MetricsRegistry()
    stats.publish(registry)
    snapshot = registry.snapshot()
    assert snapshot["resilience.retried_calls"]["value"] == 1
    assert snapshot["resilience.retries"]["value"] == 2
    assert snapshot["resilience.recovered.rate-limit"]["value"] == 2
    assert snapshot["resilience.backoff_s"]["value"] == pytest.approx(0.5)


# -- the trace CLI wrapper ------------------------------------------------------


def test_cli_trace_writes_artifacts_and_propagates_exit_code(tmp_path, capsys):
    from repro import cli

    # An invalid inner command: cheap, and exercises exit-code propagation.
    code = cli.main(
        ["trace", "--trace-dir", str(tmp_path), "tables", "9"]
    )
    assert code == 2
    trace_file = tmp_path / "trace-tables.json"
    span_log = tmp_path / "trace-tables.spans.jsonl"
    assert trace_file.exists() and span_log.exists()
    assert validate_span_log(span_log) >= 1
    doc = json.loads(trace_file.read_text())
    names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"]
    assert "command:tables" in names
    command = next(
        e for e in doc["traceEvents"]
        if e["ph"] == "X" and e["name"] == "command:tables"
    )
    assert command["args"]["exit_code"] == 2
    # The tracer (and trace-path announcement) are fully restored.
    assert obs.get_tracer() is NULL_TRACER
    assert obs.current_trace_path() is None


def test_cli_trace_requires_a_command(capsys):
    from repro import cli

    assert cli.main(["trace"]) == 2
    assert cli.main(["trace", "trace"]) == 2
