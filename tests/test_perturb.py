"""The perturbation engine and robustness-bench.

Covers the tentpole guarantees: every family is deterministic in
(seed, family, severity) — byte-identical perturbed schemas and questions
across independent applies (hypothesis) and across ``--workers 1`` vs
``--workers 4`` bench runs; the rename family preserves query semantics
(rewritten gold SQL returns the original rows on the renamed database);
the distractor family never moves a gold result; and the robustness gates
and CLI error paths behave.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import adapters
from repro.cli import main
from repro.errors import PerturbationError
from repro.perturb import (
    FAMILIES,
    FAMILY_NAMES,
    SEVERITIES,
    Perturbation,
    fingerprint_domain,
    fingerprint_rows,
    get_family,
)
from repro.perturb.bench import (
    evaluate_robustness_gates,
    render_report,
    run_robustness_bench,
    write_report,
)
from repro.perturb.synthdomain import generate_domain, manifest_for


@pytest.fixture(scope="module")
def base_domain():
    """A small real domain the families perturb (built bare, no synthesis)."""
    return adapters.get_adapter("cordis").build(scale=0.15)


# -- the family registry -------------------------------------------------------


def test_registry_ships_five_families_sorted():
    assert FAMILY_NAMES == (
        "distractor", "drift", "paraphrase", "rename", "synth",
    )
    for family in FAMILIES.values():
        assert isinstance(family, Perturbation)


def test_unknown_family_lists_the_registry():
    with pytest.raises(PerturbationError, match="distractor, drift, paraphrase"):
        get_family("typo")


def test_bench_rejects_unknown_family_before_running():
    with pytest.raises(PerturbationError, match="unknown perturbation family"):
        run_robustness_bench(domains=("cordis",), families=("nope",))


# -- determinism (hypothesis) --------------------------------------------------


@settings(
    max_examples=10, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    family=st.sampled_from(FAMILY_NAMES),
    severity=st.sampled_from(SEVERITIES),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_same_seed_family_severity_is_byte_identical(
    base_domain, family, severity, seed
):
    """Two independent applies of (seed, family, severity) produce
    byte-identical perturbed domains — schemas, rows, questions and SQL."""
    first = FAMILIES[family].apply(base_domain, severity, random.Random(seed))
    second = FAMILIES[family].apply(base_domain, severity, random.Random(seed))
    assert fingerprint_domain(first.domain) == fingerprint_domain(second.domain)
    assert first.metadata == second.metadata
    assert [p.question for p in first.domain.dev.pairs] == [
        p.question for p in second.domain.dev.pairs
    ]
    assert [p.sql for p in first.domain.seed.pairs] == [
        p.sql for p in second.domain.seed.pairs
    ]


@settings(max_examples=8, deadline=None)
@given(
    family=st.sampled_from(FAMILY_NAMES),
    severity=st.sampled_from(SEVERITIES),
    seed_a=st.integers(min_value=0, max_value=2**20),
    seed_b=st.integers(min_value=0, max_value=2**20),
)
def test_gold_sql_stays_executable_under_any_seed(
    base_domain, family, severity, seed_a, seed_b
):
    """Every family keeps every gold query runnable on its own rewritten
    schema, for arbitrary seeds (the ``validate_perturbed`` contract)."""
    for seed in {seed_a, seed_b}:
        perturbed = FAMILIES[family].apply(
            base_domain, severity, random.Random(seed)
        )
        assert perturbed.domain.validate_gold_sql() == []


def test_workers_do_not_change_the_report(tmp_path):
    """``--workers 1`` and ``--workers 4`` emit byte-identical reports."""
    kwargs = dict(
        domains=("cordis",),
        families=("rename", "drift"),
        severities=(1,),
        scale=0.15,
        dev_limit=6,
    )
    solo, _ = run_robustness_bench(
        workers=1, cache_dir=str(tmp_path / "w1"), **kwargs
    )
    fanned, _ = run_robustness_bench(
        workers=4, cache_dir=str(tmp_path / "w4"), **kwargs
    )
    dump = lambda report: json.dumps(report, indent=2, sort_keys=True)  # noqa: E731
    assert dump(solo) == dump(fanned)


def test_warm_cache_rerun_recomputes_nothing_and_matches(tmp_path):
    kwargs = dict(
        domains=("cordis",), families=("paraphrase",), severities=(2,),
        scale=0.15, dev_limit=6, cache_dir=str(tmp_path),
    )
    cold, cold_rr = run_robustness_bench(**kwargs)
    warm, warm_rr = run_robustness_bench(**kwargs)
    assert json.dumps(cold, sort_keys=True) == json.dumps(warm, sort_keys=True)
    assert cold_rr.computed > 0
    assert warm_rr.computed == 0


# -- family semantics ----------------------------------------------------------


def test_rename_preserves_query_semantics(base_domain):
    """Rewritten gold SQL on the renamed database returns exactly the rows
    the original SQL returns on the base database — for every severity."""
    for severity in SEVERITIES:
        perturbed = FAMILIES["rename"].apply(
            base_domain, severity, random.Random(7)
        )
        originals = list(base_domain.seed.pairs) + list(base_domain.dev.pairs)
        rewritten = list(perturbed.domain.seed.pairs) + list(
            perturbed.domain.dev.pairs
        )
        assert len(originals) == len(rewritten)
        changed = 0
        for old, new in zip(originals, rewritten):
            assert old.question == new.question  # questions are never touched
            changed += old.sql != new.sql
            assert fingerprint_rows(
                base_domain.database.execute(old.sql)
            ) == fingerprint_rows(perturbed.domain.database.execute(new.sql))
        assert changed > 0  # the rename actually reached the gold SQL


def test_rename_severity_3_is_fully_cryptic(base_domain):
    perturbed = FAMILIES["rename"].apply(base_domain, 3, random.Random(3))
    schema = perturbed.domain.database.schema
    base_tables = {t.name.lower() for t in base_domain.database.schema.tables}
    assert not base_tables & {t.name.lower() for t in schema.tables}
    assert perturbed.metadata["aliases_stripped"] is True


def test_drift_changes_cells_but_not_gold_sql(base_domain):
    perturbed = FAMILIES["drift"].apply(base_domain, 2, random.Random(11))
    assert perturbed.metadata["drifted_cells"] > 0
    assert [p.sql for p in perturbed.domain.dev.pairs] == [
        p.sql for p in base_domain.dev.pairs
    ]
    # Schema is untouched; only the data moved.
    assert {t.name for t in perturbed.domain.database.schema.tables} == {
        t.name for t in base_domain.database.schema.tables
    }


def test_paraphrase_rewrites_questions_only(base_domain):
    perturbed = FAMILIES["paraphrase"].apply(base_domain, 2, random.Random(5))
    assert perturbed.metadata["questions_changed"] > 0
    assert [p.sql for p in perturbed.domain.dev.pairs] == [
        p.sql for p in base_domain.dev.pairs
    ]
    assert perturbed.domain.database is base_domain.database


def test_distractor_widening_keeps_every_gold_result(base_domain):
    perturbed = FAMILIES["distractor"].apply(base_domain, 2, random.Random(17))
    invariance = perturbed.invariance
    assert invariance is not None
    assert invariance["checked"] == len(base_domain.seed.pairs) + len(
        base_domain.dev.pairs
    )
    assert invariance["identical"] is True
    assert invariance["mismatched"] == []
    assert perturbed.metadata["added_columns"] > 0
    assert len(perturbed.metadata["added_tables"]) == 2


def test_synth_family_registers_nothing_permanently(base_domain):
    before = adapters.list_adapters()
    perturbed = FAMILIES["synth"].apply(base_domain, 1, random.Random(23))
    assert adapters.list_adapters() == before
    assert perturbed.domain.name.startswith("synth_s")
    assert perturbed.metadata["adapter"]["module"] == "repro.perturb.synthdomain"


def test_synth_manifest_spec_rebuilds_the_same_domain():
    """The adapter spec alone (module + attr) rebuilds the identical
    mini-domain — the worker-process transport contract."""
    manifest = manifest_for(seed=424_242, severity=2)
    builder = adapters.builder_from_spec(manifest.spec())
    assert fingerprint_domain(builder(scale=1.0)) == fingerprint_domain(
        generate_domain(424_242, 2, 1.0)
    )


# -- the bench, its gates and the CLI ------------------------------------------


@pytest.fixture(scope="module")
def small_report():
    report, _ = run_robustness_bench(
        domains=("cordis",),
        families=("paraphrase", "distractor"),
        severities=(1,),
        scale=0.15,
        dev_limit=6,
    )
    return report


def test_report_shape_and_degradation_deltas(small_report):
    assert small_report["schema_version"] == 1
    assert small_report["benchmark"] == "robustness"
    assert small_report["matrix"]["n_cells"] == 3  # baseline + 2 families
    assert set(small_report["axes"]) == {
        "by_family", "by_severity", "by_domain", "by_system", "by_hardness",
    }
    baseline = small_report["baselines"]["valuenet:cordis"]
    for cell in small_report["cells"]:
        if cell["family"] == "baseline":
            assert cell["degradation"] is None
        else:
            assert cell["degradation"] == pytest.approx(
                baseline - cell["accuracy"], abs=1e-6
            )
    assert small_report["invariance"]["identical"] is True


def test_gate_max_degradation(small_report):
    assert evaluate_robustness_gates(small_report, max_degradation=1.0) == []
    worst = max(
        stats["mean_degradation"]
        for stats in small_report["axes"]["by_family"].values()
    )
    failures = evaluate_robustness_gates(
        small_report, max_degradation=worst - 0.01
    )
    assert any("exceeds the budget" in f for f in failures)


def test_gate_invariant(small_report):
    assert evaluate_robustness_gates(small_report, assert_invariant=True) == []
    broken = dict(small_report)
    broken["invariance"] = {
        "checked": 4, "identical": False, "mismatched": ["SELECT 1"],
    }
    failures = evaluate_robustness_gates(broken, assert_invariant=True)
    assert any("invariance violated" in f for f in failures)
    without = dict(small_report)
    without["invariance"] = None
    failures = evaluate_robustness_gates(without, assert_invariant=True)
    assert any("needs an invariant family" in f for f in failures)


def test_render_report_mentions_every_family(small_report):
    rendered = render_report(small_report)
    assert "paraphrase" in rendered and "distractor" in rendered
    assert "invariance" in rendered


def test_write_report_is_stable_json(small_report, tmp_path):
    path = write_report(small_report, tmp_path / "r.json")
    text = path.read_text()
    assert text.endswith("\n")
    assert json.loads(text)["benchmark"] == "robustness"


def test_cli_unknown_domain_lists_adapters(capsys):
    code = main(["robustness-bench", "--domain", "nope"])
    assert code == 2
    err = capsys.readouterr().err
    assert "unknown domain" in err
    for name in adapters.list_adapters():
        assert name in err


def test_cli_smoke_writes_report_and_gates(tmp_path, capsys):
    out = tmp_path / "BENCH_robustness.json"
    code = main([
        "robustness-bench", "--domain", "cordis",
        "--family", "paraphrase", "--severity", "1",
        "--scale", "0.15", "--dev-limit", "6",
        "--no-cache", "--out", str(out),
        "--assert-max-degradation", "1.0",
    ])
    assert code == 0
    assert json.loads(out.read_text())["schema_version"] == 1
    assert "robustness-bench:" in capsys.readouterr().out


def test_bench_composes_with_a_fault_schedule(tmp_path):
    """One run under a fault schedule recovers and reports the injections."""
    faulted, _ = run_robustness_bench(
        domains=("cordis",), families=("drift",), severities=(1,),
        scale=0.15, dev_limit=6, fault_schedule="transient-small",
    )
    clean, _ = run_robustness_bench(
        domains=("cordis",), families=("drift",), severities=(1,),
        scale=0.15, dev_limit=6,
    )
    faults = faulted.pop("faults")
    assert sum(faults["injected"].values()) > 0
    assert sum(faults["recovered"].values()) == sum(faults["injected"].values())
    # Recovery contract: the faulted run's results are byte-identical to the
    # fault-free run's.
    assert json.dumps(faulted, sort_keys=True) == json.dumps(
        clean, sort_keys=True
    )
