"""Printer edge cases: escaping, parenthesisation, literal rendering."""


from repro.sql import ast, parse, parse_expression, to_sql


def test_string_escaping_round_trip():
    sql = "SELECT a FROM t WHERE b = 'it''s'"
    printed = to_sql(parse(sql))
    assert "''" in printed
    reparsed = parse(printed)
    literal = ast.literals(reparsed)[0]
    assert literal.value == "it's"


def test_float_literal_round_trip():
    printed = to_sql(parse("SELECT a FROM t WHERE b = 2.22"))
    assert "2.22" in printed
    assert ast.literals(parse(printed))[0].value == 2.22


def test_negative_literal_round_trip():
    printed = to_sql(parse("SELECT a FROM t WHERE b > -3.5"))
    value = parse(printed).select.where
    assert to_sql(parse(printed)) == printed


def test_null_true_false_rendering():
    assert to_sql(ast.Literal(None)) == "NULL"
    assert to_sql(ast.Literal(True)) == "TRUE"
    assert to_sql(ast.Literal(False)) == "FALSE"


def test_nested_arithmetic_parenthesised():
    expr = parse_expression("a - (b - c)")
    printed = to_sql(expr)
    assert "(" in printed
    assert parse_expression(printed) == expr


def test_multiplication_binds_tighter_on_reprint():
    expr = parse_expression("(a + b) * c")
    printed = to_sql(expr)
    assert parse_expression(printed) == expr


def test_not_operand_parenthesised():
    sql = to_sql(parse("SELECT a FROM t WHERE NOT x = 1"))
    assert to_sql(parse(sql)) == sql


def test_mixed_bool_nesting_survives_reprint():
    original = parse("SELECT a FROM t WHERE x = 1 AND (y = 2 OR z = 3) AND w = 4")
    assert parse(to_sql(original)) == original


def test_like_keyword_uppercased():
    assert "LIKE" in to_sql(parse("SELECT a FROM t WHERE b like '%x%'"))
    assert "NOT LIKE" in to_sql(parse("SELECT a FROM t WHERE b not like '%x%'"))


def test_distinct_inside_count():
    printed = to_sql(parse("SELECT COUNT(DISTINCT a) FROM t"))
    assert printed == "SELECT COUNT(DISTINCT a) FROM t"


def test_subquery_ref_alias():
    printed = to_sql(parse("SELECT x FROM (SELECT a AS x FROM t) AS d"))
    assert "AS d" in printed
    assert to_sql(parse(printed)) == printed


def test_order_by_always_carries_direction():
    printed = to_sql(parse("SELECT a FROM t ORDER BY b"))
    assert printed.endswith("ORDER BY b ASC")
