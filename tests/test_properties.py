"""Property-based tests (hypothesis) on the core invariants.

Covered invariants:

* printer/parser round-trip stability for generated SQL ASTs;
* SemQL round-trips never change query semantics (execution equivalence);
* the executor agrees with a naive reference evaluation for filters;
* BLEU identity/bounds, embedding determinism and geometric-median
  permutation stability;
* hardness classification is total over the sampler's query space.
"""

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.embeddings import SentenceEmbedder, geometric_median_ranking
from repro.metrics.bleu import corpus_bleu
from repro.spider.hardness import HARDNESS_LEVELS, classify_hardness
from repro.sql import parse, to_sql

# ---------------------------------------------------------------------------
# Strategy: generate small SQL queries over the mini schema.
# ---------------------------------------------------------------------------

_COLUMNS = {
    "specobj": ["specobjid", "bestobjid", "class", "subclass", "z", "ra"],
    "photoobj": ["objid", "u", "r", "type"],
}
_NUMERIC = {"specobjid", "bestobjid", "z", "ra", "objid", "u", "r", "type"}
_TEXT_VALUES = ["GALAXY", "STAR", "QSO", "STARBURST", "AGN", "OB"]


@st.composite
def simple_queries(draw):
    table = draw(st.sampled_from(sorted(_COLUMNS)))
    columns = _COLUMNS[table]
    projection = draw(st.lists(st.sampled_from(columns), min_size=1, max_size=3, unique=True))
    sql = f"SELECT {', '.join(projection)} FROM {table}"

    n_conditions = draw(st.integers(min_value=0, max_value=2))
    conditions = []
    for _ in range(n_conditions):
        column = draw(st.sampled_from(columns))
        if column in _NUMERIC:
            op = draw(st.sampled_from(["=", ">", "<", ">=", "<="]))
            value = draw(st.integers(min_value=-5, max_value=30))
            conditions.append(f"{column} {op} {value}")
        else:
            value = draw(st.sampled_from(_TEXT_VALUES))
            conditions.append(f"{column} = '{value}'")
    if conditions:
        connector = draw(st.sampled_from([" AND ", " OR "]))
        sql += " WHERE " + connector.join(conditions)

    if draw(st.booleans()):
        order = draw(st.sampled_from(columns))
        direction = draw(st.sampled_from(["ASC", "DESC"]))
        sql += f" ORDER BY {order} {direction}"
        if draw(st.booleans()):
            sql += f" LIMIT {draw(st.integers(min_value=1, max_value=5))}"
    return sql


@given(simple_queries())
@settings(max_examples=120, deadline=None)
def test_parse_print_round_trip_fixpoint(sql):
    printed = to_sql(parse(sql))
    assert to_sql(parse(printed)) == printed
    assert parse(printed) == parse(printed)


@given(simple_queries())
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_execution_survives_round_trip(mini_db, sql):
    original = mini_db.try_execute(sql)
    assert original is not None
    roundtripped = mini_db.try_execute(to_sql(parse(sql)))
    assert roundtripped is not None
    assert original.to_multiset() == roundtripped.to_multiset()


@given(simple_queries())
@settings(max_examples=60, deadline=None)
def test_hardness_total_function(sql):
    assert classify_hardness(sql) in HARDNESS_LEVELS


@given(
    st.integers(min_value=-3, max_value=3),
    st.sampled_from(["=", ">", "<", ">=", "<=", "!="]),
)
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_filter_agrees_with_reference(mini_db, threshold, op):
    """The executor's comparison semantics match Python's on clean data."""
    result = mini_db.execute(f"SELECT type FROM photoobj WHERE type {op} {threshold}")
    reference = [
        (v,)
        for v in mini_db.table("photoobj").column_values("type")
        if _apply(op, v, threshold)
    ]
    assert sorted(result.rows) == sorted(reference)


def _apply(op, a, b):
    return {
        "=": a == b,
        "!=": a != b,
        ">": a > b,
        "<": a < b,
        ">=": a >= b,
        "<=": a <= b,
    }[op]


# ---------------------------------------------------------------------------
# Metric properties
# ---------------------------------------------------------------------------

_sentences = st.lists(
    st.sampled_from(
        "find show redshift galaxies stars count average the of all objects".split()
    ),
    min_size=1,
    max_size=8,
).map(" ".join)


@given(_sentences)
@settings(max_examples=60, deadline=None)
def test_bleu_identity_and_bounds(sentence):
    score = corpus_bleu([sentence], [[sentence]])
    assert score.score == pytest.approx(100.0)
    other = corpus_bleu([sentence], [["zebra quantum pickle"]])
    assert 0.0 <= other.score <= 100.0


@given(_sentences)
@settings(max_examples=40, deadline=None)
def test_embeddings_deterministic_and_unit(sentence):
    a = SentenceEmbedder().embed(sentence)
    b = SentenceEmbedder().embed(sentence)
    assert np.allclose(a, b)
    assert np.linalg.norm(a) == pytest.approx(1.0)


@given(st.lists(_sentences, min_size=2, max_size=6, unique=True), st.randoms())
@settings(max_examples=30, deadline=None)
def test_geometric_median_permutation_invariant(sentences, rng):
    embedder = SentenceEmbedder()
    matrix = embedder.embed_all(sentences)
    similarity = matrix @ matrix.T
    scores = similarity.sum(axis=0)
    tied_best = {
        sentences[i] for i in range(len(sentences)) if scores[i] >= scores.max() - 1e-9
    }
    shuffled = sentences[:]
    random.Random(rng.random()).shuffle(shuffled)
    permuted = geometric_median_ranking(embedder.embed_all(shuffled))
    assert shuffled[permuted[0]] in tied_best


@given(st.lists(st.sampled_from("abcdefg"), min_size=1, max_size=6))
@settings(max_examples=40, deadline=None)
def test_result_multiset_symmetry(letters):
    """to_multiset equality is symmetric and reflexive over row orderings."""
    from repro.engine.executor import Result

    rows = [(l,) for l in letters]
    a = Result(columns=["x"], rows=rows)
    b = Result(columns=["x"], rows=list(reversed(rows)))
    assert a.to_multiset() == b.to_multiset()
