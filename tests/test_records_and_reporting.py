"""Additional coverage: Spider-format interop, reporting, error hierarchy."""

import pytest

import repro
from repro.datasets.records import NLSQLPair, Split
from repro.errors import (
    ExecutionError,
    GenerationError,
    ReproError,
    SchemaError,
    SemQLError,
    SqlSyntaxError,
    TrainingError,
)
from repro.experiments.reporting import percentage, render_table


def test_spider_json_round_trip(tmp_path):
    split = Split(
        name="s",
        pairs=[
            NLSQLPair(question="How many singers?", sql="SELECT COUNT(*) FROM singer", db_id="concert_singer"),
            NLSQLPair(question="List names.", sql="SELECT name FROM singer", db_id="concert_singer"),
        ],
    )
    path = tmp_path / "spider.json"
    split.to_spider_json(path)
    loaded = Split.from_spider_json(path)
    assert [p.question for p in loaded] == [p.question for p in split]
    assert [p.sql for p in loaded] == [p.sql for p in split]
    assert all(p.source == "spider" for p in loaded)


def test_spider_json_layout(tmp_path):
    import json

    split = Split(
        name="s",
        pairs=[NLSQLPair(question="q", sql="SELECT a FROM t", db_id="d")],
    )
    path = tmp_path / "spider.json"
    split.to_spider_json(path)
    payload = json.loads(path.read_text())
    assert payload == [{"question": "q", "query": "SELECT a FROM t", "db_id": "d"}]


def test_split_extend_and_iter():
    split = Split(name="s")
    split.extend([NLSQLPair(question="q", sql="SELECT a FROM t", db_id="d")])
    assert len(split) == 1
    assert list(split)[0].question == "q"


# --- error hierarchy ---------------------------------------------------------------


def test_all_errors_derive_from_repro_error():
    for error_cls in (
        SqlSyntaxError,
        SchemaError,
        ExecutionError,
        SemQLError,
        GenerationError,
        TrainingError,
    ):
        assert issubclass(error_cls, ReproError)


def test_sql_syntax_error_carries_position():
    error = SqlSyntaxError("bad token", position=17)
    assert error.position == 17
    assert "17" in str(error)


def test_catching_repro_error_covers_library_failures(mini_db):
    with pytest.raises(ReproError):
        mini_db.execute("SELECT nope FROM specobj")
    with pytest.raises(ReproError):
        repro.parse("SELECT FROM")


# --- reporting -------------------------------------------------------------------------


def test_render_table_alignment():
    text = render_table(
        "Title",
        ["A", "BBBB"],
        [("x", 1), ("yyyy", 22222)],
        note="note line",
    )
    lines = text.splitlines()
    assert lines[0] == "Title"
    assert lines[1] == "====="
    assert "A" in lines[2] and "BBBB" in lines[2]
    assert "note line" in text
    assert "22,222" in text  # thousands separator for ints


def test_render_table_float_formatting():
    text = render_table("T", ["v"], [(0.123456,), (1234.5,)])
    assert "0.123" in text
    assert "1,234.5" in text


def test_percentage_formatting():
    assert percentage(1, 4) == "1 (25.0%)"
    assert percentage(0, 0) == "0 (0%)"
