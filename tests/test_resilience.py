"""Tests for the deterministic fault-injection & recovery subsystem.

The load-bearing claim: under any *transient-only* fault schedule, every
recovered artifact — synthetic splits, task-graph artifacts, repaired cache
entries — is byte-identical to the fault-free run.  Checked here at every
layer (model wrapper, translator, pipeline, scheduler, cache), with the
end-to-end version living in ``chaos-bench``.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.datasets import cordis
from repro.llm.models import GPT3_PROFILE, make_model
from repro.resilience import (
    SCHEDULES,
    CircuitBreaker,
    CircuitOpenError,
    FakeClock,
    FaultPlan,
    FaultRule,
    FlakyModel,
    PermanentFault,
    RateLimitFault,
    ResilienceStats,
    RetryOutcome,
    RetryPolicy,
    call_with_retry,
)
from repro.runtime import ArtifactCache, Runtime, Task, TaskGraph, TaskTimeoutError
from repro.synthesis import (
    AugmentationPipeline,
    PipelineConfig,
    SqlToNlTranslator,
    TranslationConfig,
    TranslationFailure,
)

# -- toy task bodies (module-level so worker processes can import them) --------


def emit(params, inputs):
    return params["value"]


def join(params, inputs):
    return params.get("sep", "+").join(inputs[role] for role in sorted(inputs))


def snooze(params, inputs):
    time.sleep(params["s"])
    return "slept"


def _toy_graph():
    graph = TaskGraph()
    graph.add(Task("x", "tests.test_resilience:emit", {"value": "a"}))
    graph.add(Task("y", "tests.test_resilience:emit", {"value": "b"}))
    graph.add(
        Task(
            "xy",
            "tests.test_resilience:join",
            {},
            deps=(("left", "x"), ("right", "y")),
        )
    )
    return graph


FAST = RetryPolicy(max_attempts=4, base_delay_s=0.0001, max_delay_s=0.001, budget_s=1.0)


@pytest.fixture(scope="module")
def domain_factory():
    return lambda: cordis.build(scale=0.12)


# -- fault plans ---------------------------------------------------------------


def test_fault_plan_is_deterministic_and_attempt_bounded():
    rule = FaultRule("llm", "rate-limit", rate=0.5)
    plan_a = FaultPlan(9, (rule,))
    plan_b = FaultPlan(9, (rule,))
    identities = [f"SELECT {i}" for i in range(100)]
    draws_a = [plan_a.draw("llm", sql, 0) for sql in identities]
    assert draws_a == [plan_b.draw("llm", sql, 0) for sql in identities]
    hit = sum(1 for draw in draws_a if draw)
    assert 20 < hit < 80  # rate is honoured statistically
    # Transient semantics: at max_attempt the fault stops, guaranteed.
    faulted = next(sql for sql, d in zip(identities, draws_a) if d)
    assert plan_a.draw("llm", faulted, 1) is None
    # Different seed: a different (but still deterministic) schedule.
    assert [FaultPlan(10, (rule,)).draw("llm", s, 0) for s in identities] != draws_a


def test_fault_plan_site_match_and_accounting():
    plan = FaultPlan(
        1,
        (
            FaultRule("cache", "cache-tear", rate=1.0, match="corpus"),
            FaultRule("task", "worker-crash", rate=1.0, match="xy"),
        ),
    )
    assert plan.draw("cache", "corpus", 0) == "cache-tear"
    assert plan.draw("cache", "domain:cordis", 0) is None  # match filter
    assert plan.draw("task", "xy", 0) == "worker-crash"
    assert plan.draw("llm", "corpus", 0) is None  # wrong site
    assert plan.draw("task", "xy", 1) is None  # past max_attempt
    assert plan.injected == {"cache-tear": 1, "worker-crash": 1}


def test_fault_plan_spec_round_trip_and_named_schedules():
    for name, spec in SCHEDULES.items():
        plan = FaultPlan.from_spec(spec)
        assert plan.to_spec() == spec, name
    with pytest.raises(ValueError):
        FaultRule("llm", "nonsense", rate=0.5)
    with pytest.raises(ValueError):
        FaultRule("llm", "timeout", rate=1.5)


# -- clocks --------------------------------------------------------------------


def test_fake_clock_auto_advances_and_records():
    clock = FakeClock(start=5.0)
    clock.sleep(2.0)
    clock.sleep(0.5)
    assert clock.now() == 7.5
    assert clock.sleeps == [2.0, 0.5]


def test_fake_clock_blocking_parks_until_advance():
    import threading

    clock = FakeClock(blocking=True)
    done = threading.Event()

    def sleeper():
        clock.sleep(3.0)
        done.set()

    thread = threading.Thread(target=sleeper)
    thread.start()
    assert not done.wait(timeout=0.05)  # verifiably parked
    clock.advance(3.0)
    assert done.wait(timeout=2.0)
    thread.join()


# -- retry policy --------------------------------------------------------------


def test_retry_delay_is_deterministic_jittered_and_capped():
    policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0, max_delay_s=0.3, jitter=0.5)
    for attempt, raw in ((0, 0.1), (1, 0.2), (2, 0.3), (5, 0.3)):
        delay = policy.delay(attempt, "q")
        assert raw * 0.5 <= delay <= raw
        assert delay == policy.delay(attempt, "q")  # deterministic
    assert policy.delay(0, "q") != policy.delay(0, "other")  # decorrelated
    assert RetryPolicy(jitter=0.0).delay(0, "q") == 0.02
    assert RetryPolicy.from_spec(policy.to_spec()) == policy


def test_call_with_retry_recovers_and_accounts():
    clock = FakeClock()
    attempts = {"n": 0}

    def flaky():
        attempts["n"] += 1
        if attempts["n"] < 3:
            raise RateLimitFault("injected", identity="q")
        return "ok"

    outcome = RetryOutcome()
    result = call_with_retry(flaky, FAST, identity="q", clock=clock, outcome=outcome)
    assert result == "ok"
    assert outcome.attempts == 3
    assert outcome.recovered == {"rate-limit": 2}
    assert outcome.slept_s == pytest.approx(sum(clock.sleeps))
    assert len(clock.sleeps) == 2


def test_call_with_retry_propagates_permanent_and_exhaustion():
    def permanent():
        raise PermanentFault("cannot translate", identity="q")

    with pytest.raises(PermanentFault):
        call_with_retry(permanent, FAST, clock=FakeClock())

    calls = {"n": 0}

    def always_transient():
        calls["n"] += 1
        raise RateLimitFault("injected")

    with pytest.raises(RateLimitFault):
        call_with_retry(always_transient, FAST, clock=FakeClock())
    assert calls["n"] == FAST.max_attempts


def test_call_with_retry_honours_sleep_budget():
    policy = RetryPolicy(
        max_attempts=100, base_delay_s=0.4, multiplier=1.0,
        max_delay_s=0.4, jitter=0.0, budget_s=1.0,
    )
    clock = FakeClock()
    calls = {"n": 0}

    def always_transient():
        calls["n"] += 1
        raise RateLimitFault("injected")

    with pytest.raises(RateLimitFault):
        call_with_retry(always_transient, policy, clock=clock)
    assert calls["n"] == 3  # slept 0.4 + 0.4; a third sleep would break 1.0


# -- circuit breaker -----------------------------------------------------------


def test_breaker_full_state_cycle():
    clock = FakeClock()
    breaker = CircuitBreaker("dep", failure_threshold=2, reset_timeout_s=10.0, clock=clock)
    assert breaker.state == "closed" and breaker.allow()
    breaker.record_failure()
    assert breaker.state == "closed"  # below threshold
    breaker.record_failure()
    assert breaker.state == "open"
    assert not breaker.allow()
    with pytest.raises(CircuitOpenError):
        breaker.check()
    clock.advance(10.0)
    assert breaker.state == "half-open"
    assert breaker.allow()  # the single probe slot
    assert not breaker.allow()  # no second probe
    breaker.record_failure()  # probe failed: re-open
    assert breaker.state == "open"
    clock.advance(10.0)
    assert breaker.allow()
    breaker.record_success()  # probe succeeded: close
    assert breaker.state == "closed"
    snapshot = breaker.snapshot()
    assert snapshot["state"] == "closed"
    assert snapshot["opened"] == 2 and snapshot["probes"] == 2
    assert snapshot["fast_failed"] >= 2


def test_breaker_success_resets_failure_streak():
    breaker = CircuitBreaker("dep", failure_threshold=2)
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == "closed"


# -- flaky model & translator --------------------------------------------------


def test_translator_recovers_byte_identically(domain_factory):
    domain = domain_factory()
    sqls = [pair.sql for pair in domain.seed.pairs[:6]]
    plain = SqlToNlTranslator(
        domain, model=make_model(GPT3_PROFILE, seed=3),
        config=TranslationConfig(retry=FAST),
    )
    expected = [plain.candidates(sql) for sql in sqls]

    plan = FaultPlan(
        5,
        (
            FaultRule("llm", "rate-limit", rate=0.4),
            FaultRule("llm", "truncated", rate=0.3),
            FaultRule("llm", "malformed", rate=0.2),
        ),
    )
    flaky = SqlToNlTranslator(
        domain, model=FlakyModel(make_model(GPT3_PROFILE, seed=3), plan),
        config=TranslationConfig(retry=FAST), clock=FakeClock(),
    )
    stats = ResilienceStats()
    recovered = []
    for sql in sqls:
        result = flaky.translate_with_recovery(sql)
        assert result.ok
        recovered.append(result.candidates)
        stats.observe(result.attempts, result.recovered, result.slept_s)
    assert recovered == expected  # byte-identical despite injected faults
    assert sum(plan.injected.values()) > 0
    assert stats.retries == sum(plan.injected.values())


def test_translator_dead_letters_permanent_faults(domain_factory):
    domain = domain_factory()
    sql = domain.seed.pairs[0].sql
    plan = FaultPlan(1, (FaultRule("llm", "permanent", rate=1.0, max_attempt=10**6),))
    translator = SqlToNlTranslator(
        domain, model=FlakyModel(make_model(GPT3_PROFILE, seed=3), plan),
        config=TranslationConfig(retry=FAST), clock=FakeClock(),
    )
    result = translator.translate_with_recovery(sql)
    assert not result.ok and result.candidates is None
    letter = result.dead_letter
    assert letter.site == "llm" and letter.kind == "permanent"
    assert letter.identity == sql and letter.attempts == 1
    # The strict API raises a structured failure instead.
    with pytest.raises(TranslationFailure) as exc_info:
        translator.candidates(sql)
    assert exc_info.value.kind == "permanent"
    assert exc_info.value.dead_letter().identity == sql


def test_translator_open_breaker_dead_letters_with_circuit_kind(domain_factory):
    domain = domain_factory()
    clock = FakeClock()
    breaker = CircuitBreaker("llm", failure_threshold=1, reset_timeout_s=999.0, clock=clock)
    breaker.record_failure()  # already open before the call
    translator = SqlToNlTranslator(
        domain, model=make_model(GPT3_PROFILE, seed=3),
        config=TranslationConfig(retry=FAST), breaker=breaker, clock=clock,
    )
    result = translator.translate_with_recovery(domain.seed.pairs[0].sql)
    assert not result.ok
    assert result.dead_letter.kind == "circuit-open"


# -- pipeline ------------------------------------------------------------------


def test_pipeline_chaos_run_matches_fault_free(domain_factory):
    config = PipelineConfig(
        target_queries=30, seed=21, translation=TranslationConfig(retry=FAST)
    )
    baseline = AugmentationPipeline(
        domain_factory(), model=make_model(GPT3_PROFILE, seed=21), config=config
    ).run(rng=random.Random(21))

    plan = FaultPlan.from_spec(SCHEDULES["transient-small"])
    chaos = AugmentationPipeline(
        domain_factory(),
        model=FlakyModel(make_model(GPT3_PROFILE, seed=21), plan),
        config=config,
        clock=FakeClock(),
    ).run(rng=random.Random(21))

    assert [p.question for p in chaos.split.pairs] == [
        p.question for p in baseline.split.pairs
    ]
    assert [p.sql for p in chaos.split.pairs] == [p.sql for p in baseline.split.pairs]
    assert chaos.n_dead_lettered == 0
    assert sum(plan.injected.values()) > 0
    assert chaos.resilience.retried_calls > 0


def test_pipeline_dead_letters_permanent_faults_and_continues(domain_factory):
    config = PipelineConfig(
        target_queries=30, seed=21, translation=TranslationConfig(retry=FAST)
    )
    baseline = AugmentationPipeline(
        domain_factory(), model=make_model(GPT3_PROFILE, seed=21), config=config
    ).run(rng=random.Random(21))

    plan = FaultPlan(8, (FaultRule("llm", "permanent", rate=0.3, max_attempt=10**6),))
    report = AugmentationPipeline(
        domain_factory(),
        model=FlakyModel(make_model(GPT3_PROFILE, seed=21), plan),
        config=config,
        clock=FakeClock(),
    ).run(rng=random.Random(21))

    # The run completed, produced a valid (smaller) split, and accounted
    # for every casualty with a structured reason.
    assert report.n_dead_lettered > 0
    assert report.n_pairs < baseline.n_pairs
    assert len(report.split.pairs) == report.n_pairs
    for letter in report.dead_letters:
        assert letter.site == "llm" and letter.kind == "permanent"
        assert letter.reason and letter.attempts >= 1
    surviving = {p.sql for p in report.split.pairs}
    assert all(letter.identity not in surviving for letter in report.dead_letters)


def test_pipeline_checkpoints_store_and_resume_identically(domain_factory, tmp_path):
    config = PipelineConfig(
        target_queries=25, seed=9, translation=TranslationConfig(retry=FAST)
    )
    cache = ArtifactCache(tmp_path)
    first = AugmentationPipeline(
        domain_factory(), model=make_model(GPT3_PROFILE, seed=9),
        config=config, checkpoints=cache,
    ).run(rng=random.Random(9))
    assert first.checkpoints == {"generate": "stored", "translate": "stored"}

    resumed = AugmentationPipeline(
        domain_factory(), model=make_model(GPT3_PROFILE, seed=9),
        config=config, checkpoints=ArtifactCache(tmp_path),
    ).run(rng=random.Random(9))
    assert resumed.checkpoints == {"generate": "resumed", "translate": "resumed"}
    assert [p.question for p in resumed.split.pairs] == [
        p.question for p in first.split.pairs
    ]

    # A different pipeline config must not share checkpoint keys.
    other = AugmentationPipeline(
        domain_factory(), model=make_model(GPT3_PROFILE, seed=9),
        config=PipelineConfig(
            target_queries=26, seed=9, translation=TranslationConfig(retry=FAST)
        ),
        checkpoints=ArtifactCache(tmp_path),
    ).run(rng=random.Random(9))
    assert other.checkpoints == {"generate": "stored", "translate": "stored"}


# -- scheduler -----------------------------------------------------------------


def test_sequential_runtime_retries_injected_crashes():
    plan = FaultPlan(1, (FaultRule("task", "worker-crash", rate=1.0, match="xy"),))
    runtime = Runtime(workers=1, retry=FAST, fault_plan=plan, clock=FakeClock())
    assert runtime.run(_toy_graph(), ["xy"])["xy"] == "a+b"
    assert runtime.report.recovered == {"worker-crash": 1}
    record = next(r for r in runtime.report.records if r.name == "xy")
    assert record.retries == 1 and record.faults == 1
    assert runtime.report.retries == 1 and runtime.report.faults_injected == 1


def test_parallel_runtime_recovers_from_real_worker_death():
    plan = FaultPlan(1, (FaultRule("task", "worker-crash", rate=1.0, match="xy"),))
    runtime = Runtime(workers=2, retry=FAST, fault_plan=plan)
    # "xy"'s worker dies via os._exit → BrokenProcessPool → pool is rebuilt
    # and the task resubmitted; the artifact matches the fault-free run.
    assert runtime.run(_toy_graph(), ["xy"])["xy"] == "a+b"
    assert runtime.report.recovered.get("worker-crash", 0) >= 1
    record = next(r for r in runtime.report.records if r.name == "xy")
    assert record.retries >= 1 and record.faults == 1


def test_runtime_raises_when_crashes_exhaust_retries():
    plan = FaultPlan(
        1, (FaultRule("task", "worker-crash", rate=1.0, max_attempt=10**6, match="xy"),)
    )
    policy = RetryPolicy(max_attempts=2, base_delay_s=0.0001, budget_s=1.0)
    from repro.resilience import WorkerCrashFault

    with pytest.raises(WorkerCrashFault):
        Runtime(workers=1, retry=policy, fault_plan=plan, clock=FakeClock()).run(
            _toy_graph(), ["xy"]
        )


def test_task_timeout_is_detected_and_retried_then_raised():
    graph = TaskGraph()
    graph.add(Task("slow", "tests.test_resilience:snooze", {"s": 0.05}))
    policy = RetryPolicy(max_attempts=2, base_delay_s=0.0001, budget_s=1.0)
    with pytest.raises(TaskTimeoutError):
        Runtime(
            workers=1, retry=policy, task_timeout_s=0.001, clock=FakeClock()
        ).run(graph, ["slow"])
    # A generous budget lets the same task through untouched.
    runtime = Runtime(workers=1, retry=policy, task_timeout_s=30.0)
    assert runtime.run(graph, ["slow"])["slow"] == "slept"


def test_run_report_render_has_resilience_columns(tmp_path):
    runtime = Runtime(workers=1, cache_dir=str(tmp_path))
    runtime.run(_toy_graph(), ["xy"])
    rendered = runtime.report.render()
    assert "retries=0" in rendered and "faults_injected=0" in rendered
    # The warm-run CI grep contract must survive the new columns.
    warm = Runtime(workers=1, cache_dir=str(tmp_path))
    warm.run(_toy_graph(), ["xy"])
    assert "computed=0 " in warm.report.render()


# -- cache tears & repair (crash consistency) ----------------------------------


def test_torn_cache_write_is_detected_and_repaired(tmp_path):
    plan = FaultPlan(1, (FaultRule("cache", "cache-tear", rate=1.0, match="x"),))
    chaos = Runtime(workers=1, cache_dir=str(tmp_path), fault_plan=plan)
    assert chaos.run(_toy_graph(), ["x"])["x"] == "a"
    assert chaos.cache.tears == 1

    # The torn entry is on disk but unreadable; a fresh fault-free run
    # detects it, recomputes, repairs it — and downstream artifacts built
    # on top are identical to a never-faulted run.
    repair = Runtime(workers=1, cache_dir=str(tmp_path))
    assert repair.run(_toy_graph(), ["xy"])["xy"] == "a+b"
    assert repair.cache.corrupt == 1
    assert sum(repair.cache.corruption_kinds.values()) == 1
    x_record = next(r for r in repair.report.records if r.name == "x")
    assert x_record.status == "computed"  # recomputed, not served torn

    # Third run: everything (including the repaired entry) is served warm.
    warm = Runtime(workers=1, cache_dir=str(tmp_path))
    assert warm.run(_toy_graph(), ["xy"])["xy"] == "a+b"
    assert warm.report.all_cached()
    assert warm.cache.corrupt == 0


def test_cache_records_swallowed_corruption_kinds(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.store("ff00", "toy", {"x": 1})
    cache.path_for("ff00").write_bytes(b"not a pickle")
    assert cache.load("ff00") == (False, None)
    assert cache.corrupt == 1
    assert sum(cache.corruption_kinds.values()) == 1
    (kind,) = cache.corruption_kinds
    assert kind  # a concrete exception class name, e.g. UnpicklingError
