"""Tests for the task-graph runtime: graph hashing, cache, scheduler and the
determinism/caching guarantees of the suite built on top of it."""

from __future__ import annotations

import pickle

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import Suite
from repro.runtime import ArtifactCache, Runtime, Task, TaskGraph, derive_seed

# -- toy task bodies (module-level so worker processes can import them) --------


def emit(params, inputs):
    return params["value"]


def join(params, inputs):
    return params.get("sep", "+").join(inputs[role] for role in sorted(inputs))


def boom(params, inputs):
    raise RuntimeError("task failed")


def _toy_graph(a="a", b="b", sep="+"):
    graph = TaskGraph()
    graph.add(Task("a", "tests.test_runtime:emit", {"value": a, "seed": derive_seed(1, "a")}))
    graph.add(Task("b", "tests.test_runtime:emit", {"value": b, "seed": derive_seed(1, "b")}))
    graph.add(
        Task(
            "ab",
            "tests.test_runtime:join",
            {"sep": sep},
            deps=(("left", "a"), ("right", "b")),
        )
    )
    return graph


# -- graph ---------------------------------------------------------------------


def test_derive_seed_is_stable_and_task_specific():
    assert derive_seed(7, "domain:sdss") == derive_seed(7, "domain:sdss")
    assert derive_seed(7, "domain:sdss") != derive_seed(7, "domain:cordis")
    assert derive_seed(7, "domain:sdss") != derive_seed(8, "domain:sdss")


def test_content_hash_changes_with_params_and_propagates():
    g1, g2, g3 = _toy_graph(), _toy_graph(a="A"), _toy_graph(sep="-")
    assert g1.content_hash("ab") == _toy_graph().content_hash("ab")
    # Upstream param change propagates to the downstream hash...
    assert g1.content_hash("a") != g2.content_hash("a")
    assert g1.content_hash("ab") != g2.content_hash("ab")
    # ...but leaves unrelated tasks untouched.
    assert g1.content_hash("b") == g2.content_hash("b")
    # A task's own params change its hash without touching upstream hashes.
    assert g1.content_hash("ab") != g3.content_hash("ab")
    assert g1.content_hash("a") == g3.content_hash("a")


def test_graph_rejects_duplicates_and_unknown_deps():
    graph = TaskGraph()
    graph.add(Task("a", "tests.test_runtime:emit", {"value": "a"}))
    with pytest.raises(ValueError):
        graph.add(Task("a", "tests.test_runtime:emit", {"value": "a2"}))
    with pytest.raises(ValueError):
        graph.add(Task("c", "tests.test_runtime:emit", {}, deps=(("x", "nope"),)))
    with pytest.raises(KeyError):
        graph.task("missing")


def test_closure_is_topological_and_minimal():
    graph = _toy_graph()
    assert graph.closure(["ab"]) == ["a", "b", "ab"]
    assert graph.closure(["b"]) == ["b"]


# -- cache ---------------------------------------------------------------------


def test_cache_round_trip_and_corruption_recovery(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.store("ff00", "toy", {"x": 1})
    hit, value = cache.load("ff00")
    assert hit and value == {"x": 1}
    # Corrupt the entry on disk: must be treated as a miss and removed.
    path = cache.path_for("ff00")
    path.write_bytes(b"not a pickle")
    hit, value = cache.load("ff00")
    assert not hit and value is None
    assert cache.corrupt == 1
    assert not path.exists()
    # A key mismatch (entry copied under the wrong name) is also corruption.
    cache.store("aa11", "toy", 1)
    cache.path_for("bb22").parent.mkdir(parents=True, exist_ok=True)
    cache.path_for("bb22").write_bytes(cache.path_for("aa11").read_bytes())
    hit, _ = cache.load("bb22")
    assert not hit


def test_disabled_cache_never_stores(tmp_path):
    cache = ArtifactCache(None)
    assert not cache.enabled
    cache.store("ff00", "toy", 1)
    assert cache.load("ff00") == (False, None)


# -- scheduler -----------------------------------------------------------------


def test_parallel_and_sequential_toy_runs_agree(tmp_path):
    sequential = Runtime(workers=1).run(_toy_graph(), ["ab"])
    parallel = Runtime(workers=4).run(_toy_graph(), ["ab"])
    assert sequential == parallel == {"ab": "a+b"}


def test_runtime_memoizes_and_caches(tmp_path):
    runtime = Runtime(workers=1, cache_dir=str(tmp_path))
    assert runtime.run(_toy_graph(), ["ab"])["ab"] == "a+b"
    assert runtime.report.computed == 3
    # Same runtime: in-process memo.
    runtime.run(_toy_graph(), ["ab"])
    assert runtime.report.memoized == 1
    # Fresh runtime, same cache dir: disk hit without recomputing deps.
    warm = Runtime(workers=1, cache_dir=str(tmp_path))
    assert warm.run(_toy_graph(), ["ab"])["ab"] == "a+b"
    assert warm.report.all_cached()
    assert [r.status for r in warm.report.records] == ["hit"]
    # Changed params: miss, recompute.
    changed = Runtime(workers=1, cache_dir=str(tmp_path))
    assert changed.run(_toy_graph(sep="-"), ["ab"])["ab"] == "a-b"
    assert changed.report.computed == 1  # only "ab"; a/b still hit
    assert changed.report.cache_hits == 2


def test_probe_reports_memo_cache_and_compute(tmp_path):
    runtime = Runtime(workers=1, cache_dir=str(tmp_path))
    graph = _toy_graph()
    assert runtime.probe(graph, ["a", "ab"]) == {"a": "compute", "ab": "compute"}
    runtime.run(graph, ["a"])
    # "a" is memoized in-process; "ab" was never built.
    assert runtime.probe(graph, ["a", "ab"]) == {"a": "memo", "ab": "compute"}
    # A fresh runtime over the same cache dir sees the disk entry.
    warm = Runtime(workers=1, cache_dir=str(tmp_path))
    assert warm.probe(graph, ["a", "ab"]) == {"a": "cached", "ab": "compute"}
    # Probing never materializes anything.
    assert warm.report.records == []


def test_worker_exceptions_propagate():
    graph = TaskGraph()
    graph.add(Task("x", "tests.test_runtime:boom", {}))
    graph.add(Task("y", "tests.test_runtime:boom", {"v": 2}))
    with pytest.raises(RuntimeError):
        Runtime(workers=1).run(graph, ["x"])
    with pytest.raises(RuntimeError):
        Runtime(workers=2).run(graph, ["x", "y"])


# -- the suite on the runtime --------------------------------------------------

TINY = ExperimentConfig(
    name="tiny-runtime",
    seed=11,
    domain_scale=0.12,
    spider_train_per_db=6,
    spider_dev_per_db=3,
    synth_targets={"cordis": 15, "sdss": 15, "oncomx": 12},
    synth_spider_per_db=3,
    table3_sample=6,
    table4_sample=10,
    dev_limit=4,
)


@pytest.fixture(scope="module")
def warm_cache_dir(tmp_path_factory):
    """A cache warmed by a sequential Table-2 + Table-5 subset run."""
    cache_dir = tmp_path_factory.mktemp("repro-cache")
    suite = Suite.from_config(TINY, runtime=Runtime(workers=1, cache_dir=str(cache_dir)))
    from repro.experiments.table2 import render_table2
    from repro.experiments.table5 import compute_table5, render_table5

    table2 = render_table2(suite)
    table5 = render_table5(
        compute_table5(
            suite, systems=("valuenet",), domains=("cordis",), include_spider_control=False
        ),
        systems=("valuenet",),
    )
    return cache_dir, table2, table5


def test_parallel_matches_sequential_tables(warm_cache_dir):
    _, table2_seq, table5_seq = warm_cache_dir
    suite = Suite.from_config(TINY, runtime=Runtime(workers=4))
    from repro.experiments.table2 import render_table2
    from repro.experiments.table5 import compute_table5, render_table5

    assert render_table2(suite) == table2_seq
    table5_par = render_table5(
        compute_table5(
            suite, systems=("valuenet",), domains=("cordis",), include_spider_control=False
        ),
        systems=("valuenet",),
    )
    assert table5_par == table5_seq
    assert suite.runtime.report.computed > 0


def test_second_run_is_fully_cached(warm_cache_dir):
    cache_dir, table2_seq, _ = warm_cache_dir
    suite = Suite.from_config(TINY, runtime=Runtime(workers=2, cache_dir=str(cache_dir)))
    from repro.experiments.table2 import render_table2

    assert render_table2(suite) == table2_seq
    assert suite.runtime.report.all_cached()


def test_config_change_invalidates_cache(warm_cache_dir):
    cache_dir, _, _ = warm_cache_dir
    changed = ExperimentConfig(
        name=TINY.name,
        seed=TINY.seed + 1,  # any config knob: the seed feeds every task hash
        domain_scale=TINY.domain_scale,
        spider_train_per_db=TINY.spider_train_per_db,
        spider_dev_per_db=TINY.spider_dev_per_db,
        synth_targets=TINY.synth_targets,
        synth_spider_per_db=TINY.synth_spider_per_db,
        dev_limit=TINY.dev_limit,
    )
    suite = Suite.from_config(changed, runtime=Runtime(workers=1, cache_dir=str(cache_dir)))
    suite.domain("cordis")
    assert suite.runtime.report.computed == 1
    assert suite.runtime.report.cache_hits == 0


def test_corrupted_cache_entry_recovers(warm_cache_dir):
    cache_dir, table2_seq, _ = warm_cache_dir
    suite = Suite.from_config(TINY, runtime=Runtime(workers=1, cache_dir=str(cache_dir)))
    key = suite.graph.content_hash("domain:cordis")
    path = suite.runtime.cache.path_for(key)
    assert path.exists()
    path.write_bytes(b"\x80garbage")
    from repro.experiments.table2 import render_table2

    assert render_table2(suite) == table2_seq  # recomputed, not crashed
    assert suite.runtime.report.computed >= 1
    assert suite.runtime.cache.corrupt == 1
    # The entry was rewritten and is healthy again.
    with path.open("rb") as fh:
        assert pickle.load(fh)["key"] == key


def test_suite_artifacts_are_memoized_per_task(warm_cache_dir):
    suite = Suite.from_config(TINY, runtime=Runtime(workers=1))
    assert suite.domain("sdss") is suite.domain("sdss")
    assert suite.corpus is suite.corpus


def test_tasks_domains_shim_warns():
    # get_suite is gone (removed after its deprecation cycle); the module
    # constants DOMAINS/DOMAIN_BUILDERS are the remaining shims.
    from repro.experiments import runner, tasks

    assert not hasattr(runner, "get_suite")
    with pytest.warns(DeprecationWarning):
        assert tasks.DOMAINS == ("cordis", "sdss", "oncomx")
    with pytest.warns(DeprecationWarning):
        builders = tasks.DOMAIN_BUILDERS
    assert set(builders) == {"cordis", "sdss", "oncomx"}


def test_augment_domain_rng_and_executor_injection():
    """Injected rng reproduces the internal seeding; executors match serial."""
    import random
    from concurrent.futures import ProcessPoolExecutor

    from repro.datasets import sdss
    from repro.synthesis import augment_domain

    domain = sdss.build(scale=0.12)
    serial = augment_domain(domain, target_queries=12, seed=5)
    injected = augment_domain(domain, target_queries=12, seed=5, rng=random.Random(5))
    assert [p.sql for p in serial.pairs] == [p.sql for p in injected.pairs]
    assert [p.question for p in serial.pairs] == [p.question for p in injected.pairs]
    with ProcessPoolExecutor(max_workers=2) as pool:
        fanned = augment_domain(domain, target_queries=12, seed=5, executor=pool)
    assert [p.question for p in fanned.pairs] == [p.question for p in serial.pairs]
