"""Per-shape tests for the MiniSpider query sampler."""

import random

import pytest

from repro.schema.introspect import profile_database
from repro.spider.domains import DOMAIN_BUILDERS
from repro.spider.sampler import QuerySampler, _render


@pytest.fixture(scope="module")
def sampler_env():
    database = DOMAIN_BUILDERS["employees"](random.Random(0))
    enhanced = profile_database(database)
    return database, enhanced


def make_sampler(sampler_env, seed=0):
    database, enhanced = sampler_env
    return QuerySampler(database, enhanced, random.Random(seed))


def test_render_literals():
    assert _render("O'Brien") == "'O''Brien'"
    assert _render(True) == "TRUE"
    assert _render(2.5) == "2.5"
    assert _render(7) == "7"


@pytest.mark.parametrize(
    "shape,fragment",
    [
        ("_shape_projection", "SELECT"),
        ("_shape_filter", "WHERE"),
        ("_shape_count", "COUNT(*)"),
        ("_shape_group_count", "GROUP BY"),
        ("_shape_having", "HAVING"),
        ("_shape_order_limit", "ORDER BY"),
        ("_shape_join_filter", "JOIN"),
        ("_shape_nested_avg", "(SELECT AVG("),
        ("_shape_nested_in", "IN (SELECT"),
        ("_shape_set_op", "SELECT"),
        ("_shape_between", "BETWEEN"),
        ("_shape_two_conditions", "WHERE"),
        ("_shape_join_two_conditions", "AND"),
        ("_shape_nested_with_condition", "AND"),
    ],
)
def test_each_shape_produces_executable_sql(sampler_env, shape, fragment):
    database, _ = sampler_env
    sampler = make_sampler(sampler_env, seed=11)
    produced = 0
    for _ in range(25):
        try:
            sql = getattr(sampler, shape)()
        except Exception:
            continue
        produced += 1
        assert fragment in sql, sql
        assert database.try_execute(sql) is not None, sql
    assert produced > 0


def test_sample_never_returns_unexecutable(sampler_env):
    database, _ = sampler_env
    sampler = make_sampler(sampler_env, seed=3)
    for _ in range(40):
        sql = sampler.sample()
        assert sql is not None
        assert database.try_execute(sql) is not None


def test_sample_many_respects_limit(sampler_env):
    sampler = make_sampler(sampler_env, seed=5)
    queries = sampler.sample_many(10)
    assert len(queries) == 10
