"""Unit tests for the schema model and enhanced schema."""

import pytest

from repro.errors import SchemaError
from repro.schema.enhanced import ColumnAnnotation, EnhancedSchema, default_enhanced_schema
from repro.schema.model import Column, ColumnType, ForeignKey, Schema, TableDef

I = ColumnType.INTEGER
T = ColumnType.TEXT
F = ColumnType.REAL


def test_duplicate_column_rejected():
    with pytest.raises(SchemaError):
        TableDef("t", (Column("a", I), Column("a", T)))


def test_primary_key_must_exist():
    with pytest.raises(SchemaError):
        TableDef("t", (Column("a", I),), primary_key="b")


def test_duplicate_table_rejected():
    table = TableDef("t", (Column("a", I),))
    with pytest.raises(SchemaError):
        Schema(name="s", tables=(table, table))


def test_foreign_key_validated():
    t1 = TableDef("t1", (Column("a", I),))
    t2 = TableDef("t2", (Column("b", I),))
    with pytest.raises(SchemaError):
        Schema(name="s", tables=(t1, t2), foreign_keys=(ForeignKey("t1", "x", "t2", "b"),))
    with pytest.raises(SchemaError):
        Schema(name="s", tables=(t1, t2), foreign_keys=(ForeignKey("t1", "a", "t3", "b"),))


def test_lookup_case_insensitive(mini_schema):
    assert mini_schema.table("SPECOBJ").name == "specobj"
    assert mini_schema.column("specobj", "Z").name == "z"


def test_join_condition_either_direction(mini_schema):
    fk = mini_schema.join_condition("photoobj", "specobj")
    assert fk is not None and fk.table == "specobj"
    assert mini_schema.join_condition("specobj", "photoobj") == fk


def test_join_path_direct_and_bridge(mini_schema):
    assert mini_schema.join_path("specobj", "photoobj") == ["specobj", "photoobj"]
    path = mini_schema.join_path("neighbors", "specobj")
    assert path == ["neighbors", "photoobj", "specobj"]


def test_join_path_disconnected():
    t1 = TableDef("a", (Column("x", I),))
    t2 = TableDef("b", (Column("y", I),))
    schema = Schema(name="s", tables=(t1, t2))
    assert schema.join_path("a", "b") is None


def test_readable_defaults_to_name_with_spaces():
    column = Column("start_year", I)
    assert column.readable == "start year"
    table = TableDef("project_members", (column,))
    assert table.readable == "project members"


def test_total_columns(mini_schema):
    assert mini_schema.total_columns() == 6 + 4 + 4


def test_annotation_validation(mini_schema):
    enhanced = EnhancedSchema(schema=mini_schema)
    with pytest.raises(SchemaError):
        enhanced.annotate("specobj", "nope", ColumnAnnotation())


def test_math_group_requires_numeric(mini_schema):
    enhanced = EnhancedSchema(schema=mini_schema)
    with pytest.raises(SchemaError):
        enhanced.mark_math_group("specobj", "g", "class")


def test_math_columns_and_groups(mini_enhanced):
    groups = mini_enhanced.math_groups("photoobj")
    assert "photoobj:magnitude" in groups
    columns = mini_enhanced.math_columns("photoobj", "photoobj:magnitude")
    assert {c.name for c in columns} == {"u", "r"}


def test_aggregatable_excludes_identifiers(mini_enhanced):
    names = {c.name for c in mini_enhanced.aggregatable_columns("specobj")}
    assert "specobjid" not in names
    assert "z" in names


def test_categorical_columns_profiled(mini_enhanced):
    names = {c.name for c in mini_enhanced.categorical_columns("specobj")}
    assert "class" in names


def test_default_enhanced_schema_marks_ids(mini_schema):
    enhanced = default_enhanced_schema(mini_schema)
    assert not enhanced.annotation("specobj", "specobjid").aggregatable


def test_readable_sql_rewrite(mini_enhanced):
    readable = mini_enhanced.readable_sql(
        "SELECT s.z FROM specobj AS s WHERE s.ra > 100"
    )
    assert "redshift" in readable
    assert "right_ascension" in readable
