"""Unit tests for SemQL conversion and template extraction."""

import pytest

from repro.errors import SemQLError
from repro.semql import (
    extract_template,
    dedupe_templates,
    semql_to_ast,
    semql_to_sql,
    signature_of,
    sql_to_semql,
)
from repro.semql import nodes as sq
from repro.sql import parse, to_sql


def lift(sql, schema):
    return sql_to_semql(parse(sql), schema)


ROUND_TRIPS = [
    "SELECT specobjid FROM specobj WHERE class = 'GALAXY' AND z > 0.5",
    "SELECT COUNT(*), class FROM specobj GROUP BY class",
    "SELECT COUNT(*) FROM specobj",
    "SELECT class FROM specobj WHERE z > (SELECT AVG(z) FROM specobj)",
    "SELECT objid FROM photoobj WHERE objid IN (SELECT bestobjid FROM specobj WHERE class = 'STAR')",
    "SELECT class FROM specobj WHERE z BETWEEN 0.1 AND 0.4 ORDER BY z DESC LIMIT 3",
    "SELECT class FROM specobj UNION SELECT subclass FROM specobj WHERE z > 1",
    "SELECT DISTINCT class FROM specobj",
    "SELECT MAX(u - r) FROM photoobj",
    "SELECT class FROM specobj GROUP BY class HAVING COUNT(*) > 2",
]


@pytest.mark.parametrize("sql", ROUND_TRIPS)
def test_sql_semql_round_trip_stable(sql, mini_schema):
    z = lift(sql, mini_schema)
    lowered = semql_to_sql(z, mini_schema)
    again = semql_to_sql(lift(lowered, mini_schema), mini_schema)
    assert lowered == again


@pytest.mark.parametrize("sql", ROUND_TRIPS)
def test_round_trip_preserves_execution(sql, mini_schema, mini_db):
    """The SemQL round trip must not change query semantics."""
    original = mini_db.execute(sql)
    lowered = semql_to_sql(lift(sql, mini_schema), mini_schema)
    roundtripped = mini_db.execute(lowered)
    assert original.to_multiset() == roundtripped.to_multiset()


def test_join_reconstructed_from_fk(mini_schema):
    z = lift(
        "SELECT T1.objid, T2.class FROM photoobj AS T1 "
        "JOIN specobj AS T2 ON T2.bestobjid = T1.objid WHERE T2.z > 0.5",
        mini_schema,
    )
    lowered = semql_to_sql(z, mini_schema)
    assert "JOIN" in lowered and "bestobjid" in lowered


def test_bridge_table_inserted(mini_schema):
    # neighbors and specobj are only connected through photoobj.
    z = lift(
        "SELECT T1.neighbormode, T3.class FROM neighbors AS T1 "
        "JOIN photoobj AS T2 ON T1.objid = T2.objid "
        "JOIN specobj AS T3 ON T3.bestobjid = T2.objid",
        mini_schema,
    )
    lowered = semql_to_sql(z, mini_schema)
    assert lowered.count("JOIN") == 2
    assert "photoobj" in lowered


def test_count_star_keeps_from_table(mini_schema):
    z = lift("SELECT COUNT(*) FROM neighbors", mini_schema)
    assert semql_to_sql(z, mini_schema) == "SELECT COUNT(*) FROM neighbors"


def test_unsupported_constructs_raise(mini_schema):
    for sql in (
        "SELECT a FROM specobj WHERE z IS NULL",
        "SELECT z FROM specobj WHERE z IN (1, 2)",
        "SELECT z FROM specobj LIMIT 3",
        "SELECT AVG(x) FROM (SELECT z AS x FROM specobj) AS d",
    ):
        with pytest.raises(SemQLError):
            lift(sql, mini_schema)


def test_math_grammar_extension(mini_schema):
    z = lift("SELECT objid FROM photoobj WHERE u - r < 2.22", mini_schema)
    maths = [n for n in z.walk() if isinstance(n, sq.MathExpr)]
    assert len(maths) == 1 and maths[0].op == "-"


def test_template_anonymizes_all_leaves(mini_schema):
    z = lift(
        "SELECT specobjid FROM specobj WHERE class = 'GALAXY' AND z > 0.5",
        mini_schema,
    )
    template = extract_template(z)
    assert sq.is_template(template.tree)
    assert template.n_tables == 1
    assert template.n_columns == 3
    assert template.n_values == 2
    leaves = [n for n in template.tree.walk() if isinstance(n, (sq.TableLeaf, sq.ColumnLeaf, sq.ValueLeaf))]
    assert leaves == []


def test_template_shares_positions_for_repeated_leaves(mini_schema):
    z = lift("SELECT z FROM specobj WHERE z > 0.5", mini_schema)
    template = extract_template(z)
    # column `z` appears twice but uses one position.
    assert template.n_columns == 1


def test_template_signature_dedupe(mini_schema):
    z1 = lift("SELECT z FROM specobj WHERE class = 'GALAXY'", mini_schema)
    z2 = lift("SELECT ra FROM specobj WHERE subclass = 'AGN'", mini_schema)
    t1, t2 = extract_template(z1), extract_template(z2)
    assert t1.signature == t2.signature
    assert len(dedupe_templates([t1, t2])) == 1


def test_signature_distinguishes_operators(mini_schema):
    z1 = lift("SELECT z FROM specobj WHERE z > 0.5", mini_schema)
    z2 = lift("SELECT z FROM specobj WHERE z < 0.5", mini_schema)
    assert signature_of(extract_template(z1).tree) != signature_of(extract_template(z2).tree)


def test_cannot_lower_template(mini_schema):
    z = lift("SELECT z FROM specobj WHERE z > 0.5", mini_schema)
    template = extract_template(z)
    with pytest.raises(SemQLError):
        semql_to_ast(template.tree, mini_schema)


def test_unknown_alias_raises(mini_schema):
    with pytest.raises(SemQLError):
        lift("SELECT nope.z FROM specobj AS s", mini_schema)
