"""Tests for the async serving subsystem (repro.serving).

The load-bearing guarantee is byte-identity: for any interleaving of
requests and any batch size, the SQL a server returns equals what
``system.predict`` returns for the same question, one at a time.  That is
checked against a really-trained system explicitly for batch sizes 1/2/8
and property-based (hypothesis) over random streams and policies.
Robustness behaviours — admission rejection, timeouts, fallback
degradation — are exercised against stub systems with injected faults.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resilience import SYSTEM_CLOCK, FakeClock
from repro.serving import (
    CachedResult,
    DomainBackend,
    InferenceServer,
    LatencyHistogram,
    LoadProfile,
    ResultCache,
    ServerConfig,
    TemplateFallback,
    build_stream,
    render_report,
    run_serve_bench,
    write_report,
)
from repro.spider import build_corpus


def run(coro):
    return asyncio.run(coro)


# -- stub systems ---------------------------------------------------------------


class EchoSystem:
    """Deterministic stand-in for a trained system.

    Decode latency is simulated through an injectable clock — a blocking
    :class:`FakeClock` parks the decode thread until the test ``advance``-s
    virtual time, so timeout tests wait for nothing real and cannot race.
    """

    _trained = True

    def __init__(self, delay_s: float = 0.0, clock=SYSTEM_CLOCK):
        self.delay_s = delay_s
        self.clock = clock
        self.batch_calls = 0

    def link(self, question, db_id):
        return None

    def predict(self, question, db_id):
        return f"SELECT '{question}' FROM {db_id}"

    def predict_batch(self, questions, db_id):
        self.batch_calls += 1
        if self.delay_s:
            self.clock.sleep(self.delay_s)
        return [self.predict(question, db_id) for question in questions]


class FaultySystem(EchoSystem):
    def predict(self, question, db_id):
        raise RuntimeError("decoder exploded")

    def predict_batch(self, questions, db_id):
        raise RuntimeError("batch decoder exploded")


class StubFallback:
    def predict(self, question, db_id):
        return f"SELECT count(*) FROM {db_id}"


def echo_server(**overrides) -> InferenceServer:
    defaults = dict(max_batch=4, max_wait_ms=1.0)
    defaults.update(overrides)
    backend = DomainBackend(name="demo", system=EchoSystem())
    return InferenceServer([backend], ServerConfig(**defaults))


# -- result cache ---------------------------------------------------------------


def test_result_cache_hit_miss_and_lru_eviction():
    cache = ResultCache(capacity=2)
    cache.put("d", "q1", CachedResult(sql="s1"))
    cache.put("d", "q2", CachedResult(sql="s2"))
    hit, entry = cache.get("d", "q1")  # refreshes q1's recency
    assert hit and entry.sql == "s1"
    cache.put("d", "q3", CachedResult(sql="s3"))  # evicts q2, not q1
    assert cache.get("d", "q2") == (False, None)
    assert cache.get("d", "q1")[0] and cache.get("d", "q3")[0]
    stats = cache.stats()
    assert stats["evictions"] == 1 and stats["size"] == 2
    assert stats["hits"] == 3 and stats["misses"] == 1


def test_result_cache_normalizes_question_key():
    cache = ResultCache(capacity=4)
    cache.put("d", "How  many STARS?", CachedResult(sql="s"))
    hit, entry = cache.get("d", "  how many stars?  ")
    assert hit and entry.sql == "s"
    assert cache.key("d", "A  b") == cache.key("d", "a B")


def test_result_cache_capacity_zero_disables():
    cache = ResultCache(capacity=0)
    cache.put("d", "q", CachedResult(sql="s"))
    assert cache.get("d", "q") == (False, None)
    assert cache.stats()["hits"] == 0 and cache.stats()["misses"] == 0


# -- metrics --------------------------------------------------------------------


def test_latency_histogram_quantiles_bounded_by_observations():
    histogram = LatencyHistogram()
    for ms in (1, 2, 3, 4, 100):
        histogram.observe(ms / 1000.0)
    assert histogram.count == 5
    assert histogram.quantile(1.0) == pytest.approx(0.1)
    assert 0.0005 <= histogram.quantile(0.5) <= 0.01
    summary = histogram.summary()
    assert summary["max_ms"] == pytest.approx(100.0)
    assert summary["p50_ms"] <= summary["p95_ms"] <= summary["p99_ms"]


def test_latency_histogram_empty():
    histogram = LatencyHistogram()
    assert histogram.quantile(0.5) == 0.0
    assert histogram.summary()["count"] == 0


# -- server happy path ----------------------------------------------------------


def test_serves_concurrent_requests_and_batches():
    async def scenario():
        async with echo_server() as server:
            results = await asyncio.gather(
                *(server.submit(f"q{i}", "demo") for i in range(8))
            )
            return results, server.stats()

    results, stats = run(scenario())
    assert all(r.status == "ok" for r in results)
    assert [r.sql for r in results] == [
        f"SELECT 'q{i}' FROM demo" for i in range(8)
    ]
    assert stats.counters["served"] == 8
    assert stats.counters["failed"] == 0
    assert stats.latency_ms["total"]["count"] == 8


def test_cache_hit_on_repeat_question():
    async def scenario():
        async with echo_server() as server:
            first = await server.submit("how many stars?", "demo")
            second = await server.submit("How  MANY stars?", "demo")
            return first, second, server.stats()

    first, second, stats = run(scenario())
    assert not first.cached and second.cached
    assert second.sql == first.sql
    assert stats.counters["cache_hits"] == 1
    assert stats.cache["hits"] == 1


def test_exact_duplicates_coalesce_into_one_decode():
    async def scenario():
        backend = DomainBackend(name="demo", system=EchoSystem())
        config = ServerConfig(max_batch=8, max_wait_ms=20.0, cache_capacity=0)
        async with InferenceServer([backend], config) as server:
            results = await asyncio.gather(
                *(server.submit("same question", "demo") for _ in range(6))
            )
            return results, server.stats()

    results, stats = run(scenario())
    assert all(r.sql == "SELECT 'same question' FROM demo" for r in results)
    assert stats.counters["coalesced"] >= 5
    assert stats.counters["cache_hits"] == 0  # cache was disabled


def test_unknown_domain_is_structured_failure():
    async def scenario():
        async with echo_server() as server:
            return await server.submit("q", "nope")

    result = run(scenario())
    assert result.status == "failed" and not result.ok
    assert result.error.kind == "unknown-domain"


def test_execute_attaches_rows(mini_db):
    class SqlSystem(EchoSystem):
        def predict(self, question, db_id):
            return "SELECT count(*) FROM photoobj"

    async def scenario():
        backend = DomainBackend(name="demo", system=SqlSystem(), database=mini_db)
        config = ServerConfig(execute=True)
        async with InferenceServer([backend], config) as server:
            return await server.submit("how many photo objects?", "demo")

    result = run(scenario())
    assert result.status == "ok"
    assert result.rows == ((5,),)


# -- robustness -----------------------------------------------------------------


def test_queue_full_rejected_explicitly():
    async def scenario():
        server = echo_server(queue_limit=2)  # workers deliberately not started
        waiting = [
            asyncio.ensure_future(server.submit(f"q{i}", "demo")) for i in range(2)
        ]
        await asyncio.sleep(0)  # let both enqueue
        rejected = await server.submit("q-extra", "demo")
        stats = server.stats()
        for task in waiting:
            task.cancel()
        await asyncio.gather(*waiting, return_exceptions=True)
        return rejected, stats

    rejected, stats = run(scenario())
    assert rejected.status == "rejected" and not rejected.ok
    assert rejected.error.kind == "rejected"
    assert "queue" in rejected.error.message
    assert stats.counters["rejected"] == 1
    assert stats.pending == 2


def test_request_timeout_is_structured():
    # A blocking fake clock parks the decode thread: the decode verifiably
    # cannot finish before the request times out, with no real sleeping.
    clock = FakeClock(blocking=True)

    async def scenario():
        backend = DomainBackend(
            name="demo", system=EchoSystem(delay_s=60.0, clock=clock)
        )
        config = ServerConfig(request_timeout_s=0.02, cache_capacity=0)
        async with InferenceServer([backend], config) as server:
            result = await server.submit("slow question", "demo")
            stats = server.stats()
            clock.advance(120.0)  # release the parked decode thread
            return result, stats

    result, stats = run(scenario())
    assert result.status == "timeout" and not result.ok
    assert result.error.kind == "timeout"
    assert stats.counters["timeouts"] == 1
    assert clock.sleeps == [60.0]


def test_primary_failure_degrades_to_fallback():
    async def scenario():
        backend = DomainBackend(
            name="demo", system=FaultySystem(), fallback=StubFallback()
        )
        async with InferenceServer([backend]) as server:
            result = await server.submit("anything", "demo")
            return result, server.stats()

    result, stats = run(scenario())
    assert result.status == "degraded" and result.ok
    assert result.sql == "SELECT count(*) FROM demo"
    assert result.error.kind == "degraded"
    assert stats.counters["degraded"] == 1
    assert stats.counters["served"] == 1


def test_degraded_answers_are_not_cached():
    async def scenario():
        backend = DomainBackend(
            name="demo", system=FaultySystem(), fallback=StubFallback()
        )
        async with InferenceServer([backend]) as server:
            await server.submit("q", "demo")
            second = await server.submit("q", "demo")
            return second, server.stats()

    second, stats = run(scenario())
    assert not second.cached
    assert stats.counters["degraded"] == 2


def test_primary_failure_without_fallback_fails():
    async def scenario():
        backend = DomainBackend(name="demo", system=FaultySystem())
        async with InferenceServer([backend]) as server:
            result = await server.submit("anything", "demo")
            return result, server.stats()

    result, stats = run(scenario())
    assert result.status == "failed" and not result.ok
    assert result.error.kind == "decode-failed"
    assert stats.counters["failed"] == 1


def test_breaker_opens_and_fast_fails_to_fallback():
    clock = FakeClock()
    calls = {"batch": 0, "single": 0}

    class CountingFaulty(EchoSystem):
        def predict(self, question, db_id):
            calls["single"] += 1
            raise RuntimeError("decoder exploded")

        def predict_batch(self, questions, db_id):
            calls["batch"] += 1
            raise RuntimeError("batch decoder exploded")

    async def scenario():
        backend = DomainBackend(
            name="demo", system=CountingFaulty(), fallback=StubFallback()
        )
        config = ServerConfig(
            cache_capacity=0, breaker_failures=2, breaker_reset_s=30.0
        )
        async with InferenceServer([backend], config, clock=clock) as server:
            # One request records two failures (batch, then per-question):
            # enough to trip a threshold-2 breaker.
            first = await server.submit("q1", "demo")
            snapshot_open = server.breaker_states()["demo"]
            before = dict(calls)
            # Open circuit: served by the fallback, primary never called.
            second = await server.submit("q2", "demo")
            after = dict(calls)
            # After the cooldown the breaker admits a probe; the primary
            # fails again, so the circuit re-opens.
            clock.advance(30.0)
            third = await server.submit("q3", "demo")
            return first, second, third, snapshot_open, before, after, server

    first, second, third, snapshot_open, before, after, server = run(scenario())
    assert first.status == "degraded"
    assert snapshot_open["state"] == "open" and snapshot_open["opened"] == 1
    assert second.status == "degraded" and second.sql == "SELECT count(*) FROM demo"
    assert after == before  # fast-fail: no primary call while open
    assert "circuit breaker open" in second.error.message
    assert third.status == "degraded"
    final = server.breaker_states()["demo"]
    assert final["state"] == "open" and final["probes"] >= 1
    assert final["opened"] == 2
    assert server.stats().breakers["demo"]["fast_failed"] >= 1


def test_breaker_recloses_after_successful_probe():
    clock = FakeClock()

    class Recovering(EchoSystem):
        def __init__(self):
            super().__init__()
            self.broken = True

        def predict(self, question, db_id):
            if self.broken:
                raise RuntimeError("still down")
            return super().predict(question, db_id)

        def predict_batch(self, questions, db_id):
            if self.broken:
                raise RuntimeError("still down")
            return super().predict_batch(questions, db_id)

    system = Recovering()

    async def scenario():
        backend = DomainBackend(name="demo", system=system, fallback=StubFallback())
        config = ServerConfig(
            cache_capacity=0, breaker_failures=2, breaker_reset_s=10.0
        )
        async with InferenceServer([backend], config, clock=clock) as server:
            await server.submit("q1", "demo")  # trips the breaker
            system.broken = False
            clock.advance(10.0)
            healed = await server.submit("q2", "demo")
            return healed, server.breaker_states()["demo"]

    healed, snapshot = run(scenario())
    assert healed.status == "ok"
    assert healed.sql == "SELECT 'q2' FROM demo"
    assert snapshot["state"] == "closed"


def test_stop_resolves_queued_requests():
    async def scenario():
        server = echo_server()  # never started
        pending = asyncio.ensure_future(server.submit("q", "demo"))
        await asyncio.sleep(0)
        server._started = True  # force the drain path
        await server.stop()
        return await pending

    result = run(scenario())
    assert result.status == "failed"
    assert result.error.kind == "shutdown"


# -- template fallback ----------------------------------------------------------


def test_template_fallback_produces_executable_sql(mini_db, mini_enhanced):
    fallback = TemplateFallback()
    fallback.register_database("mini", mini_db, mini_enhanced)
    for question in (
        "How many spectroscopic objects are there?",
        "Show the redshift of each spectroscopic object",
        "completely ungroundable gibberish",
    ):
        sql = fallback.predict(question, "mini")
        assert mini_db.try_execute(sql) is not None, sql
    counting = fallback.predict("How many photometric objects?", "mini")
    assert counting.startswith("SELECT count(*)")


# -- byte-identity against a really-trained system ------------------------------


@pytest.fixture(scope="module")
def served_system():
    corpus = build_corpus(train_per_db=30, dev_per_db=8)
    from repro.nl2sql import ValueNet

    system = ValueNet()
    for db_id, database in corpus.databases.items():
        system.register_database(db_id, database, corpus.enhanced[db_id])
    system.train(corpus.train.pairs)
    db_id = corpus.dev.pairs[0].db_id
    questions = [p.question for p in corpus.dev.pairs if p.db_id == db_id][:8]
    expected = {q: system.predict(q, db_id) for q in questions}
    return system, db_id, questions, expected


@pytest.mark.parametrize("max_batch", (1, 2, 8))
def test_batched_serving_is_byte_identical(served_system, max_batch):
    system, db_id, questions, expected = served_system

    async def scenario():
        backend = DomainBackend(name=db_id, system=system)
        config = ServerConfig(
            max_batch=max_batch, max_wait_ms=5.0, cache_capacity=0
        )
        async with InferenceServer([backend], config) as server:
            return await asyncio.gather(
                *(server.submit(question, db_id) for question in questions)
            )

    for result in run(scenario()):
        assert result.status == "ok"
        assert result.sql == expected[result.question]


@settings(max_examples=12, deadline=None)
@given(
    picks=st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=24),
    max_batch=st.integers(min_value=1, max_value=8),
    cache_capacity=st.sampled_from((0, 64)),
)
def test_any_interleaving_matches_direct_predict(
    served_system, picks, max_batch, cache_capacity
):
    """Property: for any request stream, any batch size, cache on or off,
    served SQL == direct ``system.predict`` output."""
    system, db_id, questions, expected = served_system
    stream = [questions[i % len(questions)] for i in picks]

    async def scenario():
        backend = DomainBackend(name=db_id, system=system)
        config = ServerConfig(
            max_batch=max_batch, max_wait_ms=2.0, cache_capacity=cache_capacity
        )
        async with InferenceServer([backend], config) as server:
            return await asyncio.gather(
                *(server.submit(question, db_id) for question in stream)
            )

    for result in run(scenario()):
        assert result.status == "ok"
        assert result.sql == expected[result.question]


def test_fleet_serving_is_byte_identical(served_system):
    """The determinism contract: fleet answers == direct ``predict`` output,
    byte for byte, with requests sharded over two replica clones."""
    from repro.fleet import build_fleet

    system, db_id, questions, expected = served_system

    async def scenario():
        backend = DomainBackend(name=db_id, system=system)
        router = build_fleet(
            {db_id: backend}, 2,
            server_config=ServerConfig(max_batch=4, max_wait_ms=2.0),
        )
        async with router:
            return await asyncio.gather(
                *(router.submit(question, db_id) for question in questions * 2)
            )

    results = run(scenario())
    replicas = set()
    for result in results:
        assert result.ok
        assert result.sql == expected[result.question]
        if result.replica:
            replicas.add(result.replica)
    # Requests really dispatched to the fleet's slots, not a degenerate path.
    assert replicas and replicas <= {"r0", "r1"}


# -- load generator -------------------------------------------------------------


def test_build_stream_is_deterministic():
    questions = {"b": ["q1", "q2"], "a": ["q3"]}
    profile = LoadProfile(repeat=2, seed=5)
    stream = build_stream(questions, profile)
    assert stream == build_stream(questions, profile)
    assert len(stream) == 6
    assert build_stream(questions, LoadProfile(repeat=2, seed=5, limit=3)) == stream[:3]


def test_run_serve_bench_report_structure(tmp_path):
    backends = {"demo": DomainBackend(name="demo", system=EchoSystem())}
    questions = {"demo": [f"question {i}" for i in range(6)]}
    report = run_serve_bench(
        backends,
        questions,
        LoadProfile(concurrency=4, repeat=3, seed=1),
        ServerConfig(max_batch=4, max_wait_ms=1.0),
    )
    assert report["stream"]["requests"] == 18
    assert set(report["arms"]) == {"unbatched", "batched"}
    for arm in report["arms"].values():
        assert arm["requests"] == 18
        assert arm["statuses"] == {"ok": 18}
        assert arm["latency"]["p50_ms"] <= arm["latency"]["p95_ms"]
    assert report["arms"]["unbatched"]["counters"]["cache_hits"] == 0
    assert report["arms"]["batched"]["counters"]["cache_hits"] > 0
    assert report["speedup"] > 0

    path = write_report(report, tmp_path / "bench" / "report.json")
    assert path.exists()
    text = render_report(report)
    assert "speedup" in text and "unbatched" in text
