"""Tests for MiniSpider: domains, the query sampler and corpus assembly."""

import random

import pytest

from repro.schema.introspect import profile_database
from repro.spider import DOMAIN_BUILDERS, build_corpus
from repro.spider.sampler import QuerySampler


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(train_per_db=20, dev_per_db=8)


@pytest.mark.parametrize("name", sorted(DOMAIN_BUILDERS))
def test_domain_builders_produce_populated_dbs(name):
    database = DOMAIN_BUILDERS[name](random.Random(1))
    assert database.row_count() > 0
    for fk in database.schema.foreign_keys:
        child = set(database.table(fk.table).column_values(fk.column))
        child.discard(None)
        parent = set(database.table(fk.ref_table).column_values(fk.ref_column))
        assert child <= parent


def test_spider_profile_small_schemas():
    """Spider's Table-1 profile: a few tables and a couple dozen columns."""
    for _name, builder in DOMAIN_BUILDERS.items():
        database = builder(random.Random(0))
        assert 2 <= len(database.schema.tables) <= 4
        assert database.schema.total_columns() <= 25


def test_sampler_produces_executable_queries():
    database = DOMAIN_BUILDERS["employees"](random.Random(2))
    enhanced = profile_database(database)
    sampler = QuerySampler(database, enhanced, random.Random(3))
    queries = sampler.sample_many(30)
    assert len(queries) >= 25
    for sql in queries:
        assert database.try_execute(sql) is not None


def test_sampler_queries_distinct():
    database = DOMAIN_BUILDERS["movies"](random.Random(2))
    enhanced = profile_database(database)
    sampler = QuerySampler(database, enhanced, random.Random(9))
    queries = sampler.sample_many(40)
    assert len(queries) == len(set(queries))


def test_sampler_covers_hardness_spectrum():
    database = DOMAIN_BUILDERS["concert_singer"](random.Random(2))
    enhanced = profile_database(database)
    sampler = QuerySampler(database, enhanced, random.Random(4))
    from repro.spider.hardness import hardness_distribution

    counts = hardness_distribution(sampler.sample_many(80))
    assert counts["easy"] > 0 and counts["medium"] > 0
    assert counts["hard"] + counts["extra"] > 0


def test_corpus_sizes(corpus):
    n_dbs = len(corpus.databases)
    assert len(corpus.train) == pytest.approx(20 * n_dbs, abs=2 * n_dbs)
    assert len(corpus.dev) > 0
    assert set(p.db_id for p in corpus.train) == set(corpus.databases)


def test_corpus_train_dev_disjoint_sql(corpus):
    train_sql = {(p.db_id, p.sql) for p in corpus.train}
    dev_sql = {(p.db_id, p.sql) for p in corpus.dev}
    assert not train_sql & dev_sql


def test_corpus_questions_nonempty(corpus):
    for pair in list(corpus.train)[:50]:
        assert pair.question.strip()
        assert pair.question[-1] in ".?"


def test_corpus_gold_sql_executes(corpus):
    for pair in list(corpus.dev):
        assert corpus.databases[pair.db_id].try_execute(pair.sql) is not None


def test_corpus_deterministic():
    a = build_corpus(train_per_db=5, dev_per_db=2, seed=42)
    b = build_corpus(train_per_db=5, dev_per_db=2, seed=42)
    assert [p.sql for p in a.train] == [p.sql for p in b.train]
    assert [p.question for p in a.train] == [p.question for p in b.train]


def test_corpus_domain_subset():
    corpus = build_corpus(train_per_db=5, dev_per_db=2, domains=["pets", "movies"])
    assert set(corpus.databases) == {"pets", "movies"}
