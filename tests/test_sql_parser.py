"""Unit tests for the SQL parser and printer (round-trip properties)."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql import ast, parse, parse_expression, to_sql


ROUND_TRIP_QUERIES = [
    "SELECT a FROM t",
    "SELECT DISTINCT a, b FROM t",
    "SELECT s.specobjid FROM specobj AS s WHERE s.subclass = 'STARBURST'",
    "SELECT COUNT(*) FROM t WHERE x > 1 AND y < 2",
    "SELECT COUNT(DISTINCT a) FROM t",
    "SELECT AVG(z) FROM specobj GROUP BY class HAVING COUNT(*) > 3",
    "SELECT a FROM t ORDER BY b DESC LIMIT 5",
    "SELECT a FROM t WHERE b BETWEEN 1 AND 2",
    "SELECT a FROM t WHERE b NOT BETWEEN 1 AND 2",
    "SELECT a FROM t WHERE b IN (1, 2, 3)",
    "SELECT a FROM t WHERE b NOT IN (SELECT c FROM u)",
    "SELECT a FROM t WHERE b LIKE '%x%'",
    "SELECT a FROM t WHERE b NOT LIKE '%x%'",
    "SELECT a FROM t WHERE b IS NULL",
    "SELECT a FROM t WHERE b IS NOT NULL",
    "SELECT a FROM t WHERE NOT EXISTS (SELECT 1 FROM u)",
    "SELECT a FROM t UNION SELECT a FROM u",
    "SELECT a FROM t INTERSECT SELECT a FROM u",
    "SELECT a FROM t EXCEPT SELECT a FROM u",
    "SELECT p.u - p.r FROM photoobj AS p WHERE p.u - p.r < 2.22",
    "SELECT AVG(price) FROM (SELECT price FROM items WHERE q > 3) AS d",
    "SELECT x FROM t WHERE y > (SELECT AVG(y) FROM t)",
    "SELECT t.* FROM t",
    "SELECT * FROM t",
    "SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3",
]


@pytest.mark.parametrize("sql", ROUND_TRIP_QUERIES)
def test_round_trip_is_stable(sql):
    once = to_sql(parse(sql))
    twice = to_sql(parse(once))
    assert once == twice


def test_structural_equality_of_reparsed_queries():
    sql = "SELECT a, b FROM t WHERE c = 'x' AND d > 2"
    assert parse(sql) == parse(to_sql(parse(sql)))


def test_join_with_alias_and_condition():
    query = parse(
        "SELECT T1.a FROM t AS T1 JOIN u AS T2 ON T1.id = T2.tid WHERE T2.b = 1"
    )
    select = query.select
    assert [r.binding for r in select.table_refs()] == ["T1", "T2"]
    assert isinstance(select.joins[0].condition, ast.Comparison)


def test_implicit_alias_without_as():
    query = parse("SELECT s.a FROM specobj s")
    assert query.select.from_tables[0].alias == "s"


def test_left_join_treated_as_join():
    query = parse("SELECT a FROM t LEFT JOIN u ON t.id = u.tid")
    assert len(query.select.joins) == 1


def test_negative_number_literal():
    expr = parse_expression("-3.5")
    assert isinstance(expr, ast.UnaryMinus)


def test_arithmetic_precedence():
    expr = parse_expression("a + b * c")
    assert isinstance(expr, ast.BinaryOp)
    assert expr.op == "+"
    assert isinstance(expr.right, ast.BinaryOp) and expr.right.op == "*"


def test_boolean_precedence_or_over_and():
    expr = parse_expression("a = 1 OR b = 2 AND c = 3")
    assert isinstance(expr, ast.BoolOp) and expr.op == "or"
    assert isinstance(expr.operands[1], ast.BoolOp)
    assert expr.operands[1].op == "and"


def test_nary_and_flattened():
    expr = parse_expression("a = 1 AND b = 2 AND c = 3")
    assert isinstance(expr, ast.BoolOp)
    assert len(expr.operands) == 3


def test_limit_parses_integer():
    assert parse("SELECT a FROM t LIMIT 10").select.limit == 10


def test_trailing_garbage_raises():
    with pytest.raises(SqlSyntaxError):
        parse("SELECT a FROM t garbage extra ,")


def test_missing_from_table_raises():
    with pytest.raises(SqlSyntaxError):
        parse("SELECT a FROM WHERE x = 1")


def test_unbalanced_parens_raise():
    with pytest.raises(SqlSyntaxError):
        parse("SELECT a FROM t WHERE (x = 1")


def test_semicolon_accepted():
    assert to_sql(parse("SELECT a FROM t;")) == "SELECT a FROM t"


def test_null_true_false_literals():
    query = parse("SELECT a FROM t WHERE b = NULL OR c = TRUE OR d = FALSE")
    literals = ast.literals(query)
    assert {l.value for l in literals} == {None, True, False}


def test_column_refs_helper():
    query = parse("SELECT a, t.b FROM t WHERE c > 1")
    names = {c.column for c in ast.column_refs(query)}
    assert names == {"a", "b", "c"}


def test_set_op_chain_right_associative():
    query = parse("SELECT a FROM t UNION SELECT a FROM u UNION SELECT a FROM v")
    assert query.set_op == "union"
    assert query.right.set_op == "union"


def test_union_all_flag():
    query = parse("SELECT a FROM t UNION ALL SELECT a FROM u")
    assert query.set_all is True


def test_or_inside_and_printed_with_parens():
    sql = to_sql(parse("SELECT a FROM t WHERE (x = 1 OR y = 2) AND z = 3"))
    assert "(" in sql and to_sql(parse(sql)) == sql
