"""Unit tests for the SQL lexer."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql.tokens import Token, TokenType, tokenize


def kinds(text):
    return [(t.type, t.value) for t in tokenize(text)[:-1]]


def test_keywords_are_case_insensitive():
    assert kinds("SELECT select SeLeCt") == [
        (TokenType.KEYWORD, "select"),
        (TokenType.KEYWORD, "select"),
        (TokenType.KEYWORD, "select"),
    ]


def test_identifiers_preserve_case():
    tokens = kinds("myTable Other_col2")
    assert tokens == [
        (TokenType.IDENT, "myTable"),
        (TokenType.IDENT, "Other_col2"),
    ]


def test_numbers_integer_and_decimal_and_exponent():
    values = [v for _, v in kinds("42 3.14 1e5 2.5E-3")]
    assert values == ["42", "3.14", "1e5", "2.5E-3"]


def test_number_followed_by_dot_member_access():
    # "T1.col" must lex as IDENT DOT IDENT, not a malformed number.
    tokens = kinds("T1.col")
    assert tokens == [
        (TokenType.IDENT, "T1"),
        (TokenType.PUNCT, "."),
        (TokenType.IDENT, "col"),
    ]


def test_single_quoted_string_with_escape():
    tokens = kinds("'it''s'")
    assert tokens == [(TokenType.STRING, "it's")]


def test_double_quoted_string():
    tokens = kinds('"GALAXY"')
    assert tokens == [(TokenType.STRING, "GALAXY")]


def test_unterminated_string_raises():
    with pytest.raises(SqlSyntaxError):
        tokenize("SELECT 'oops")


def test_multi_character_operators_greedy():
    values = [v for _, v in kinds("a <= b >= c <> d != e")]
    assert "<=" in values and ">=" in values and "<>" in values and "!=" in values


def test_unknown_character_raises_with_position():
    with pytest.raises(SqlSyntaxError) as excinfo:
        tokenize("SELECT @")
    assert excinfo.value.position == 7


def test_eof_token_terminates_stream():
    tokens = tokenize("SELECT 1")
    assert tokens[-1].type is TokenType.EOF


def test_is_keyword_helper():
    token = Token(TokenType.KEYWORD, "select", 0)
    assert token.is_keyword("select", "from")
    assert not token.is_keyword("from")


def test_whitespace_only_input():
    tokens = tokenize("   \n\t ")
    assert len(tokens) == 1 and tokens[0].type is TokenType.EOF
