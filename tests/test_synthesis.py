"""Tests for the four pipeline phases and the end-to-end pipeline."""

import random

import pytest

from repro.datasets.records import NLSQLPair
from repro.metrics import EquivalenceJudge
from repro.semql import nodes as sq
from repro.synthesis import (
    AugmentationPipeline,
    Discriminator,
    DiscriminatorConfig,
    GenerationConfig,
    PipelineConfig,
    SqlGenerator,
    extract_templates,
)
from repro.synthesis.generation import column_pool


# --- Phase 1: seeding ---------------------------------------------------------


def test_extract_templates_dedupes(mini_schema):
    pairs = [
        NLSQLPair(question="a", sql="SELECT z FROM specobj WHERE class = 'GALAXY'", db_id="d"),
        NLSQLPair(question="b", sql="SELECT ra FROM specobj WHERE subclass = 'AGN'", db_id="d"),
        NLSQLPair(question="c", sql="SELECT COUNT(*) FROM specobj", db_id="d"),
    ]
    result = extract_templates(pairs, mini_schema)
    assert result.n_unique == 2
    assert result.skipped == []


def test_extract_templates_reports_skips(mini_schema):
    pairs = [
        NLSQLPair(question="a", sql="SELECT z FROM specobj WHERE z IS NULL", db_id="d"),
        NLSQLPair(question="b", sql="SELECT z FROM specobj", db_id="d"),
    ]
    result = extract_templates(pairs, mini_schema)
    assert result.n_unique == 1
    assert len(result.skipped) == 1


# --- Phase 2: generation (Algorithm 1) -------------------------------------------


@pytest.fixture()
def generator(mini_db, mini_enhanced):
    return SqlGenerator(
        mini_db,
        mini_enhanced,
        random.Random(17),
        config=GenerationConfig(queries_per_template=10, require_nonempty=True),
    )


def template_of(sql, schema):
    from repro.semql import extract_template, sql_to_semql
    from repro.sql import parse

    return extract_template(sql_to_semql(parse(sql), schema), source_sql=sql)


def test_instantiation_produces_executable_nonempty_sql(
    generator, mini_db, mini_schema
):
    template = template_of("SELECT z FROM specobj WHERE class = 'GALAXY'", mini_schema)
    for _ in range(5):
        sql = generator.instantiate(template)
        assert sql is not None
        result = mini_db.execute(sql)
        assert result.rows


def test_instantiation_respects_aggregatable_constraint(
    generator, mini_schema, mini_enhanced
):
    """AVG must never land on an identifier column (the paper's
    ``AVG(specobjid)`` anti-example)."""
    from repro.sql import ast, parse

    template = template_of("SELECT AVG(z) FROM specobj", mini_schema)
    for _ in range(15):
        sql = generator.instantiate(template)
        assert sql is not None
        query = parse(sql)
        call = query.select.items[0].expr
        assert isinstance(call, ast.FuncCall)
        column = call.args[0]
        table = query.select.from_tables[0].name
        annotation = mini_enhanced.annotation(table, column.column)
        assert annotation.aggregatable, sql


def test_instantiation_group_by_uses_categorical(generator, mini_schema, mini_enhanced):
    from repro.sql import parse

    template = template_of("SELECT COUNT(*), class FROM specobj GROUP BY class", mini_schema)
    for _ in range(10):
        sql = generator.instantiate(template)
        assert sql is not None
        query = parse(sql)
        key = query.select.group_by[0]
        table = query.select.from_tables[0].name
        assert mini_enhanced.annotation(table, key.column).categorical, sql


def test_instantiation_math_stays_in_group(generator, mini_schema):
    from repro.sql import ast, parse

    template = template_of(
        "SELECT objid FROM photoobj WHERE u - r < 2.0", mini_schema
    )
    for _ in range(10):
        sql = generator.instantiate(template)
        assert sql is not None
        query = parse(sql)
        ops = [n for n in query.walk() if isinstance(n, ast.BinaryOp)]
        assert ops, sql
        names = {ops[0].left.column, ops[0].right.column}
        assert names <= {"u", "r"}, sql
        assert len(names) == 2


def test_generate_round_robin_hits_target(generator, mini_schema):
    templates = [
        template_of("SELECT z FROM specobj WHERE class = 'GALAXY'", mini_schema),
        template_of("SELECT COUNT(*) FROM specobj", mini_schema),
    ]
    queries = generator.generate(templates)
    assert len(queries) == len(set(queries))
    assert len(queries) >= 3


def test_column_pool_contexts(mini_enhanced):
    assert {c.name for c in column_pool(mini_enhanced, "specobj", "group")} >= {"class"}
    assert all(
        c.type.is_numeric for c in column_pool(mini_enhanced, "specobj", "avg")
    )
    assert all(
        c.type.value == "text" for c in column_pool(mini_enhanced, "specobj", "like")
    )


# --- Phase 4: discrimination -------------------------------------------------------


def test_discriminator_selects_consensus():
    discriminator = Discriminator(DiscriminatorConfig(top_k=2))
    candidates = [
        "find the redshift of all galaxies",
        "show the redshift of galaxies",
        "list the redshift of the galaxies",
        "what is the redshift of galaxies",
        "count the french project members",  # semantic outlier
    ]
    selected = discriminator.select(candidates)
    assert len(selected) == 2
    assert "count the french project members" not in selected


def test_discriminator_dedupes():
    discriminator = Discriminator(DiscriminatorConfig(top_k=2))
    assert discriminator.select(["same", "same", "same"]) == ["same"]


def test_discriminator_invalid_k():
    with pytest.raises(ValueError):
        Discriminator(DiscriminatorConfig(top_k=0))


# --- end-to-end ------------------------------------------------------------------------


@pytest.fixture(scope="module")
def sdss_pipeline_report(sdss_domain):
    pipeline = AugmentationPipeline(
        sdss_domain, config=PipelineConfig(target_queries=60)
    )
    return pipeline.run()


def test_pipeline_produces_pairs(sdss_pipeline_report):
    report = sdss_pipeline_report
    assert report.n_generated_sql >= 50
    # top-2 candidate selection → up to two questions per query.
    assert report.n_pairs >= report.n_generated_sql


def test_pipeline_pairs_execute(sdss_domain, sdss_pipeline_report):
    for pair in sdss_pipeline_report.split.pairs:
        assert sdss_domain.database.try_execute(pair.sql) is not None


def test_pipeline_sets_domain_synth(sdss_domain, sdss_pipeline_report):
    assert sdss_domain.synth is sdss_pipeline_report.split
    assert all(p.source == "synth" for p in sdss_domain.synth)


def test_pipeline_quality_is_silver_not_perfect(sdss_domain, sdss_pipeline_report):
    """Table 4's property: mostly correct, never perfect."""
    judge = EquivalenceJudge(sdss_domain.enhanced, lexicon=sdss_domain.lexicon)
    rate = judge.judge_rate(
        [(p.question, p.sql) for p in sdss_pipeline_report.split.pairs]
    )
    assert 0.6 < rate <= 1.0


def test_pipeline_deterministic(sdss_domain):
    config = PipelineConfig(target_queries=20)
    a = AugmentationPipeline(sdss_domain, config=config).run()
    b = AugmentationPipeline(sdss_domain, config=config).run()
    assert [p.sql for p in a.split.pairs] == [p.sql for p in b.split.pairs]
    assert [p.question for p in a.split.pairs] == [p.question for p in b.split.pairs]
