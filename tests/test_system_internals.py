"""Unit tests for system-internal helpers of SmBoP and T5."""


import pytest

from repro.datasets.records import NLSQLPair
from repro.nl2sql.smbop import SmBoP, _as_int, _drop_last
from repro.nl2sql.t5 import T5Seq2Seq
from repro.semql import nodes as sq


def test_as_int_normalises_whole_floats():
    assert _as_int(3.0) == 3 and isinstance(_as_int(3.0), int)
    assert _as_int(3.5) == 3.5


def test_drop_last_unwraps_filter_node():
    condition = sq.Condition(
        op="=",
        attribute=sq.A(agg="none", column=sq.StarLeaf()),
        value=sq.ValueLeaf(value=1),
    )
    tree = sq.FilterNode(op="and", left=condition, right=condition)
    assert _drop_last(tree) is condition
    assert _drop_last(condition) is None


def test_smbop_filter_boundary():
    boundary = SmBoP._filter_boundary("Find the name of singers whose age is 20.")
    assert boundary == "Find the name of singers ".__len__()
    no_boundary = SmBoP._filter_boundary("Find all names")
    assert no_boundary == len("Find all names")


@pytest.fixture()
def smbop(mini_db, mini_enhanced):
    system = SmBoP()
    system.register_database("mini_sdss", mini_db, mini_enhanced)
    return system


def test_smbop_count_question(smbop, mini_db):
    smbop.train(
        [
            NLSQLPair(
                question="How many spectroscopic objects are there?",
                sql="SELECT COUNT(*) FROM specobj",
                db_id="mini_sdss",
            )
        ]
    )
    predicted = smbop.predict(
        "How many spectroscopic objects are there whose spectroscopic class is GALAXY?",
        "mini_sdss",
    )
    assert predicted is not None
    result = mini_db.execute(predicted)
    assert result.rows == [(3,)]


def test_smbop_superlative(smbop, mini_db):
    smbop.train(
        [
            NLSQLPair(
                question="Find the redshift of spectroscopic objects.",
                sql="SELECT z FROM specobj",
                db_id="mini_sdss",
            )
        ]
    )
    predicted = smbop.predict(
        "Find the redshift of spectroscopic objects with the highest redshift.",
        "mini_sdss",
    )
    assert predicted is not None
    assert "ORDER BY" in predicted and "LIMIT 1" in predicted


def test_smbop_projection_prior_counts(smbop):
    pairs = [
        NLSQLPair(
            question="Show the redshift.",
            sql="SELECT z FROM specobj",
            db_id="mini_sdss",
        )
    ] * 3 + [
        NLSQLPair(
            question="Show the class.",
            sql="SELECT class FROM specobj",
            db_id="mini_sdss",
        )
    ]
    smbop.train(pairs)
    prior = smbop._projection_prior("mini_sdss", "specobj")
    assert prior[0] == "z"


@pytest.fixture()
def t5(mini_db, mini_enhanced):
    system = T5Seq2Seq()
    system.register_database("mini_sdss", mini_db, mini_enhanced)
    return system


def test_t5_memory_grows_with_training(t5):
    assert len(t5._memory) == 0
    t5.train(
        [
            NLSQLPair(
                question="Show the redshift of spectroscopic objects.",
                sql="SELECT z FROM specobj",
                db_id="mini_sdss",
            )
        ]
    )
    assert len(t5._memory) == 1


def test_t5_naive_adapt_substitutes_literals(t5):
    from repro.nl2sql.linking import Links, ValueLink

    links = Links()
    links.values = [ValueLink(table="specobj", column="class", value="QSO", score=2.0)]
    links.numbers = [0.9]
    adapted = t5._naive_adapt(
        "SELECT z FROM specobj WHERE class = 'GALAXY' AND z > 0.5", links
    )
    assert "'QSO'" in adapted
    assert "0.9" in adapted


def test_t5_nearest_prefers_same_db(t5, mini_db, mini_enhanced):
    t5.register_database("other", mini_db, mini_enhanced)
    t5.train(
        [
            NLSQLPair(question="Show the redshift.", sql="SELECT z FROM specobj", db_id="other"),
            NLSQLPair(question="Show the redshift.", sql="SELECT z FROM specobj", db_id="mini_sdss"),
        ]
    )
    neighbours = t5._nearest("Show the redshift.", "mini_sdss")
    assert neighbours[0][1].db_id == "mini_sdss"
