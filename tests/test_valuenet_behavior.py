"""Behavioural unit tests for ValueNet's decoding."""

import pytest

from repro.datasets.records import NLSQLPair
from repro.nl2sql import ValueNet
from repro.nl2sql.linking import Links, ValueLink


@pytest.fixture()
def valuenet(mini_db, mini_enhanced):
    system = ValueNet()
    system.register_database("mini_sdss", mini_db, mini_enhanced)
    system.train(
        [
            NLSQLPair(
                question="Find the redshift of spectroscopic objects whose spectroscopic class is GALAXY.",
                sql="SELECT z FROM specobj WHERE class = 'GALAXY'",
                db_id="mini_sdss",
            ),
            NLSQLPair(
                question="Show the right ascension of objects with redshift greater than 0.5.",
                sql="SELECT ra FROM specobj WHERE z > 0.5",
                db_id="mini_sdss",
            ),
            NLSQLPair(
                question="How many spectroscopic objects are there?",
                sql="SELECT COUNT(*) FROM specobj",
                db_id="mini_sdss",
            ),
        ]
    )
    return system


def test_prediction_grounds_value(valuenet, mini_db):
    predicted = valuenet.predict(
        "Find the redshift of spectroscopic objects whose spectroscopic class is STAR.",
        "mini_sdss",
    )
    assert predicted is not None
    assert "'STAR'" in predicted
    gold = mini_db.execute("SELECT z FROM specobj WHERE class = 'STAR'")
    assert mini_db.execute(predicted).to_multiset() == gold.to_multiset()


def test_prediction_is_executable_or_none(valuenet, mini_db):
    for question in (
        "Show me something entirely unrelated to anything.",
        "Find the redshift of objects whose class is NONEXISTENT_VALUE_XYZ.",
    ):
        predicted = valuenet.predict(question, "mini_sdss")
        if predicted is not None:
            assert mini_db.try_execute(predicted) is not None


def test_score_penalises_hallucinated_literals(valuenet):
    links = Links()
    links.values = [ValueLink(table="specobj", column="class", value="STAR", score=2.0)]
    links.numbers = []
    grounded = valuenet._score(0, links, "SELECT z FROM specobj WHERE class = 'STAR'", True)
    hallucinated = valuenet._score(
        0, links, "SELECT z FROM specobj WHERE class = 'STAR' AND ra > 99", True
    )
    assert grounded > hallucinated


def test_score_prefers_higher_rank(valuenet):
    links = Links()
    assert valuenet._score(0, links, "SELECT z FROM specobj", True) > valuenet._score(
        2, links, "SELECT z FROM specobj", True
    )


def test_template_store_shared_across_databases(valuenet, mini_db, mini_enhanced):
    """Templates are anonymized — training on one database must make the
    structure available for another (the transfer that gives nonzero
    zero-shot accuracy in Table 5)."""
    valuenet.register_database("other", mini_db, mini_enhanced)
    predicted = valuenet.predict(
        "How many photometric objects are there?", "other"
    )
    assert predicted is not None
    assert "COUNT(*)" in predicted
