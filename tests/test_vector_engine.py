"""Vector engine: byte-identity with the row engine, caching, fallback.

The vector engine's contract is *exact* equality with the row engine —
same columns, same rows, same order, same value objects — on every query
it plans.  These tests check that contract three ways: a hypothesis sweep
over generated queries (filters, joins, aggregates, set-relevant ORDER BY
ties), the real SDSS gold split, and targeted cases for the caching and
fallback machinery.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.engine import create_database
from repro.engine.executor import Executor
from repro.engine.vector import VectorEngine
from repro.engine.vector.planner import VectorUnsupported
from repro.obs import Tracer
from repro.sql import parse


def _counter(engine: VectorEngine, name: str) -> float:
    entry = engine.metrics.snapshot().get(f"engine.vector.{name}")
    return entry["value"] if entry else 0.0


def _assert_identical(database, engine: VectorEngine, sql: str) -> None:
    row = Executor(database).execute(parse(sql))
    vec = engine.execute(parse(sql))
    assert list(vec.columns) == list(row.columns), sql
    assert vec.rows == row.rows, sql


@pytest.fixture(scope="module")
def engines(mini_db):
    """One shared engine pair over the session database — repeated examples
    exercise the plan/selection/join-index caches, not just cold planning."""
    return mini_db, VectorEngine(mini_db)


# ---------------------------------------------------------------------------
# Property sweep: vector == row, byte for byte
# ---------------------------------------------------------------------------

_CONDITIONS = [
    "z > 0.5",
    "z >= 0.55",
    "z < 0.3",
    "class = 'GALAXY'",
    "class != 'STAR'",
    "subclass IS NULL",
    "subclass IS NOT NULL",
    "z BETWEEN 0.2 AND 1.0",
    "class IN ('GALAXY', 'STAR')",
    "class LIKE 'G%'",
    "bestobjid = 3",
]

_PHOTO_CONDITIONS = ["type = 3", "r > 17.0", "u <= 20.0", "type != 6"]

_AGGS = ["COUNT(*)", "SUM(z)", "AVG(z)", "MIN(ra)", "MAX(z)"]


@st.composite
def vector_queries(draw):
    kind = draw(st.sampled_from(["single", "join", "agg"]))
    if kind == "single":
        columns = ["specobjid", "bestobjid", "class", "subclass", "z", "ra"]
        projection = draw(
            st.lists(st.sampled_from(columns), min_size=1, max_size=3, unique=True)
        )
        sql = (
            "SELECT "
            + ("DISTINCT " if draw(st.booleans()) else "")
            + ", ".join(projection)
            + " FROM specobj"
        )
        conditions = draw(
            st.lists(st.sampled_from(_CONDITIONS), min_size=0, max_size=2)
        )
        if conditions:
            sql += " WHERE " + draw(st.sampled_from([" AND ", " OR "])).join(
                conditions
            )
        if draw(st.booleans()):
            # 'class' ties across rows: byte-identity requires both engines
            # to break ties the same way.
            order = draw(st.sampled_from(["class", projection[0]]))
            sql += f" ORDER BY {order} {draw(st.sampled_from(['ASC', 'DESC']))}"
        if draw(st.booleans()):
            sql += f" LIMIT {draw(st.integers(min_value=1, max_value=4))}"
        return sql
    if kind == "join":
        sql = (
            "SELECT s.class, p.r FROM specobj AS s "
            "JOIN photoobj AS p ON s.bestobjid = p.objid"
        )
        if draw(st.booleans()):
            sql += " JOIN neighbors AS n ON n.objid = p.objid"
        where = []
        if draw(st.booleans()):
            where.append("s." + draw(st.sampled_from(_CONDITIONS[:5])))
        if draw(st.booleans()):
            where.append("p." + draw(st.sampled_from(_PHOTO_CONDITIONS)))
        if where:
            sql += " WHERE " + " AND ".join(where)
        if draw(st.booleans()):
            sql += " ORDER BY s.class, p.r"
        return sql
    aggs = draw(st.lists(st.sampled_from(_AGGS), min_size=1, max_size=2, unique=True))
    sql = f"SELECT class, {', '.join(aggs)} FROM specobj GROUP BY class"
    if draw(st.booleans()):
        sql += " HAVING COUNT(*) >= 1"
    if draw(st.booleans()):
        sql += f" ORDER BY {aggs[0]} DESC"
    return sql


@given(vector_queries())
@settings(
    max_examples=150,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_vector_matches_row_engine(engines, sql):
    database, engine = engines
    _assert_identical(database, engine, sql)


# ---------------------------------------------------------------------------
# Gold split identity on a real domain
# ---------------------------------------------------------------------------


def test_sdss_gold_split_byte_identical(sdss_domain):
    engine = VectorEngine(sdss_domain.database)
    for pair in sdss_domain.seed.pairs:
        _assert_identical(sdss_domain.database, engine, pair.sql)
    assert _counter(engine, "fallbacks") == 0


# ---------------------------------------------------------------------------
# Caching
# ---------------------------------------------------------------------------


def test_warm_rerun_is_identical_and_cached(mini_db):
    engine = VectorEngine(mini_db)
    query = parse(
        "SELECT s.class, COUNT(*) FROM specobj AS s "
        "JOIN photoobj AS p ON s.bestobjid = p.objid "
        "WHERE p.type = 3 GROUP BY s.class ORDER BY COUNT(*) DESC"
    )
    first = engine.execute(query)
    second = engine.execute(query)
    assert first.rows == second.rows
    assert list(first.columns) == list(second.columns)
    assert _counter(engine, "plans_built") == 1
    assert _counter(engine, "plan_cache_hits") >= 1


def test_insert_invalidates_columnar_caches(mini_schema):
    database = create_database(
        mini_schema,
        {"photoobj": [(1, 19.0, 16.5, 3), (2, 20.0, 19.5, 6)]},
    )
    engine = VectorEngine(database)
    query = parse("SELECT COUNT(*) FROM photoobj WHERE type = 3")
    assert engine.execute(query).rows == [(1,)]
    database.insert("photoobj", [(3, 21.0, 18.0, 3)])
    # Both the columnar snapshot and the scan's selection cache must refresh.
    assert engine.execute(query).rows == [(2,)]
    assert Executor(database).execute(query).rows == [(2,)]


def test_engine_swap_on_database(mini_schema):
    database = create_database(
        mini_schema, {"photoobj": [(1, 19.0, 16.5, 3)]}
    )
    assert database.engine_name == "native"
    database.set_engine("vector")
    assert database.engine_name == "vector"
    assert database.execute("SELECT objid FROM photoobj").rows == [(1,)]
    database.set_engine("native")
    assert database.engine_name == "native"
    from repro.errors import ExecutionError

    with pytest.raises(ExecutionError):
        database.set_engine("turbo")


# ---------------------------------------------------------------------------
# Fallback contract
# ---------------------------------------------------------------------------


def test_unsupported_plan_falls_back_to_row_engine(mini_db, monkeypatch):
    engine = VectorEngine(mini_db)
    sql = "SELECT class FROM specobj ORDER BY class"
    expected = Executor(mini_db).execute(parse(sql))

    def refuse(query, sql=None):
        raise VectorUnsupported("injected for the fallback test")

    monkeypatch.setattr(engine._planner, "plan_query", refuse)
    result = engine.execute(parse(sql))
    assert result.rows == expected.rows
    assert _counter(engine, "fallbacks") == 1


def test_forward_on_reference_reports_fallback(mini_db):
    engine = VectorEngine(mini_db)
    sql = (
        "SELECT COUNT(*) FROM specobj AS s "
        "JOIN photoobj AS p ON p.objid = n.objid "
        "JOIN neighbors AS n ON n.neighborobjid = p.objid"
    )
    rendered = engine.explain(parse(sql), sql)
    assert rendered.startswith("fallback to row engine:")
    assert "later table" in rendered


# ---------------------------------------------------------------------------
# Observability: corrected counters on spans
# ---------------------------------------------------------------------------


def _query_span_attrs(database, engine_name: str, sql: str) -> dict:
    database.set_engine(engine_name)
    tracer = Tracer()
    previous = obs.set_tracer(tracer)
    try:
        database.execute(sql)
    finally:
        obs.set_tracer(previous)
        database.set_engine("native")
    names = {"native": "engine.query", "vector": "engine.vector.query"}
    spans = [s for s in tracer.finished() if s.name == names[engine_name]]
    assert spans, f"no {names[engine_name]} span recorded"
    return spans[-1].attrs


def test_rows_scanned_excludes_derived_table_results(mini_schema):
    """The satellite fix: subquery *result* rows are not scan work.  Both
    engines bill only the 5 base-table rows for a derived-table query."""
    database = create_database(
        mini_schema,
        {
            "specobj": [
                (10, 1, "GALAXY", "STARBURST", 0.70, 120.0),
                (11, 2, "GALAXY", "AGN", 0.30, 121.0),
                (12, 3, "STAR", "OB", 0.00, 122.0),
                (13, 4, "QSO", "BROADLINE", 1.80, 123.0),
                (14, 5, "GALAXY", None, 0.55, 124.5),
            ]
        },
    )
    sql = "SELECT class FROM (SELECT class FROM specobj) AS t"
    for engine_name in ("native", "vector"):
        attrs = _query_span_attrs(database, engine_name, sql)
        assert attrs["rows_scanned"] == 5, engine_name


def test_vector_span_carries_plan_hash(mini_schema):
    database = create_database(
        mini_schema, {"photoobj": [(1, 19.0, 16.5, 3)]}
    )
    attrs = _query_span_attrs(
        database, "vector", "SELECT objid FROM photoobj WHERE type = 3"
    )
    assert attrs["fallback"] is False
    assert len(attrs["plan_hash"]) == 12
    assert attrs["batches"] >= 1
