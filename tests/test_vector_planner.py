"""Vector planner: cost-based join ordering, pushdown, plan stability.

The planner's join order must follow the :class:`ColumnStats` cardinality
estimates (smallest filtered scan drives), single-binding predicates must
push down onto their scans, and the rendered plan / ``plan_hash`` must be
deterministic — the hash identifies plans on spans and in reports, so two
structurally equal queries must agree on it.
"""

from __future__ import annotations

import pytest

from repro.engine import create_database
from repro.engine.diffexec import run_three_way
from repro.engine.vector import VectorEngine
from repro.schema.model import Column, ColumnType, Schema, TableDef
from repro.sql import parse

I = ColumnType.INTEGER
T = ColumnType.TEXT


@pytest.fixture(scope="module")
def skew_db():
    """Two tables with a 40:4 cardinality skew, linked by a foreign key."""
    schema = Schema(
        name="skew",
        tables=(
            TableDef(
                "events",
                (Column("id", I), Column("kind_id", I), Column("label", T)),
                primary_key="id",
            ),
            TableDef(
                "kinds",
                (Column("kind_id", I), Column("name", T)),
                primary_key="kind_id",
            ),
        ),
        foreign_keys=(),
    )
    return create_database(
        schema,
        {
            "events": [
                (n, n % 4, f"event-{n % 7}") for n in range(40)
            ],
            "kinds": [(k, f"kind-{k}") for k in range(4)],
        },
    )


def _plan_text(database, sql: str) -> str:
    return VectorEngine(database).explain(parse(sql), sql)


def test_join_order_follows_cardinalities(skew_db):
    """With no filters, the 4-row side must drive the join, not the
    declaration order (events is declared first but is 10x larger)."""
    rendered = _plan_text(
        skew_db,
        "SELECT k.name, e.label FROM events AS e "
        "JOIN kinds AS k ON e.kind_id = k.kind_id",
    )
    assert rendered.index("Scan kinds") < rendered.index("Scan events")
    # Reordering away from declaration order forces the restore stage that
    # keeps output order byte-identical to the row engine.
    assert "RestoreOrder" in rendered


def test_filtered_scan_becomes_the_driver(skew_db):
    """A selective filter flips the driver: events filtered to one label
    (~6 of 40 rows) now beats the 4-row kinds table only if the estimate
    says so — with ndv(label)=7 the estimate is ~5.7 rows, so kinds (4)
    still drives; with an equality on the unique id (est 1) events must."""
    rendered = _plan_text(
        skew_db,
        "SELECT k.name FROM events AS e "
        "JOIN kinds AS k ON e.kind_id = k.kind_id WHERE e.id = 7",
    )
    assert rendered.index("Scan events") < rendered.index("Scan kinds")


def test_single_binding_predicates_push_down(skew_db):
    rendered = _plan_text(
        skew_db,
        "SELECT e.label FROM events AS e "
        "JOIN kinds AS k ON e.kind_id = k.kind_id "
        "WHERE k.name = 'kind-1' AND e.id > 10",
    )
    assert "Scan kinds AS k filters=[k.name = 'kind-1']" in rendered
    assert "Scan events AS e filters=[e.id > 10]" in rendered


def test_declaration_order_join_needs_no_restore(skew_db):
    """When the cost order equals declaration order the plan must not pay
    for (or advertise) an order-restoration stage."""
    rendered = _plan_text(
        skew_db,
        "SELECT k.name, e.label FROM kinds AS k "
        "JOIN events AS e ON e.kind_id = k.kind_id",
    )
    assert "RestoreOrder" not in rendered


def test_plan_hash_stable_and_discriminating(skew_db):
    sql = "SELECT label FROM events WHERE kind_id = 2 ORDER BY label"
    engine_a = VectorEngine(skew_db)
    engine_b = VectorEngine(skew_db)
    plan_a = engine_a._planner.plan_query(parse(sql), sql)
    plan_b = engine_b._planner.plan_query(parse(sql), sql)
    assert plan_a.plan_hash == plan_b.plan_hash
    other = engine_a._planner.plan_query(
        parse("SELECT label FROM events WHERE kind_id = 3 ORDER BY label"),
        None,
    )
    # Same shape, different constant: the hash keys on structure.
    assert other.shape() != plan_a.shape() or other.plan_hash == plan_a.plan_hash


def test_plan_estimates_appear_in_render(skew_db):
    rendered = _plan_text(
        skew_db, "SELECT label FROM events WHERE kind_id = 2"
    )
    assert rendered.startswith("plan ")
    assert "est" in rendered and "/40 rows" in rendered


def test_aggregate_stage_renders_groups_and_aggs(skew_db):
    rendered = _plan_text(
        skew_db,
        "SELECT kind_id, COUNT(*) FROM events GROUP BY kind_id "
        "HAVING COUNT(*) > 5 ORDER BY COUNT(*) DESC LIMIT 2",
    )
    assert "Aggregate groups=[kind_id] aggs=[COUNT(*)]" in rendered
    assert "having=(COUNT(*) > 5)" in rendered
    assert "Limit 2" in rendered


# ---------------------------------------------------------------------------
# Three-way differential execution (the satellite's 0-divergence gate)
# ---------------------------------------------------------------------------


def test_three_way_diffexec_agrees_on_sdss_gold(sdss_domain):
    reports = run_three_way(sdss_domain, splits=("seed", "dev"))
    assert [r.backend for r in reports] == ["vector", "sqlite"]
    for report in reports:
        assert report.agreed, report.render()
        assert report.n_queries > 0
